//! Execution contract and the user-facing interpreter facade.
//!
//! This module defines everything the timing simulator and the tests
//! program against: runtime values ([`RtVal`]), traps ([`Trap`]), the
//! simulated flat [`Memory`], and the observer contract ([`Event`],
//! [`EventKind`], [`ExecObserver`]) through which `swpf-sim` watches
//! every retired instruction — static instruction identity (for
//! stride-prefetcher PC tables), memory addresses, and operand value-ids
//! (for dataflow dependence tracking in the out-of-order core model).
//!
//! Execution itself is layered (see [`crate::exec`]): a one-time decode
//! pass lowers a module into a dense [`ExecImage`], and a slim resumable
//! engine runs the image. [`Interp`] is the compatibility facade over
//! that engine: it owns the simulated memory, builds images on demand in
//! [`Interp::start`], and preserves the original interpreter's API —
//! `start`/`step` for multicore interleaving, `run` for one-shot
//! execution. The original tree-walking engine survives as
//! [`crate::classic::ClassicInterp`], the differential-testing oracle.

use crate::bytecode::BcEngine;
use crate::classic::ClassicInterp;
use crate::exec::{Engine, ExecImage};
use crate::function::FuncId;
use crate::inst::{BinOp, Pred};
use crate::module::Module;
use crate::types::Type;
use crate::value::ValueId;
use std::fmt;
use std::sync::Arc;

/// A runtime scalar. Pointers are carried as `Int` (addresses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtVal {
    /// Integer or pointer payload (sign-agnostic 64-bit).
    Int(i64),
    /// Floating-point payload.
    Float(f64),
}

impl RtVal {
    /// Integer payload.
    ///
    /// # Panics
    /// If the value is a float.
    #[must_use]
    pub fn as_int(self) -> i64 {
        match self {
            RtVal::Int(v) => v,
            RtVal::Float(_) => panic!("expected integer value"),
        }
    }

    /// Float payload.
    ///
    /// # Panics
    /// If the value is an integer.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            RtVal::Float(v) => v,
            RtVal::Int(_) => panic!("expected float value"),
        }
    }
}

/// A runtime fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Load or store outside allocated memory.
    MemFault {
        /// Faulting address.
        addr: u64,
        /// Access size in bytes.
        size: u32,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Instruction budget exhausted (see [`Interp::set_fuel`]).
    OutOfFuel,
    /// Call stack exceeded the depth limit.
    StackOverflow,
    /// Simulated heap exhausted.
    OutOfMemory,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::MemFault { addr, size } => {
                write!(f, "memory fault: {size}-byte access at {addr:#x}")
            }
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::OutOfFuel => write!(f, "instruction budget exhausted"),
            Trap::StackOverflow => write!(f, "call stack overflow"),
            Trap::OutOfMemory => write!(f, "simulated heap exhausted"),
        }
    }
}

impl std::error::Error for Trap {}

/// Dynamic classification of a retired instruction, as seen by observers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Register-to-register work (arithmetic, compares, selects, casts,
    /// phis, address computation).
    Alu,
    /// A demand memory read.
    Load {
        /// Effective address.
        addr: u64,
        /// Access size in bytes.
        size: u32,
    },
    /// A memory write.
    Store {
        /// Effective address.
        addr: u64,
        /// Access size in bytes.
        size: u32,
    },
    /// A software prefetch hint. `valid` is false when the address was
    /// outside allocated memory (real hardware silently drops these).
    Prefetch {
        /// Hinted address.
        addr: u64,
        /// Whether the address was mapped.
        valid: bool,
    },
    /// A control-flow instruction (branch, conditional branch).
    Branch {
        /// Whether a conditional branch was taken (`true` for `br`).
        taken: bool,
    },
    /// Function call entry.
    Call,
    /// Function return.
    Ret,
    /// Heap allocation.
    Alloc,
}

/// A retired instruction notification.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Static identity: `(function index << 32) | value index`. Stable
    /// across iterations, suitable for stride-table indexing.
    pub pc: u64,
    /// Monotonic id of the executing call frame (for dependence keying).
    pub frame: u64,
    /// Value id of the result (also the instruction id).
    pub result: ValueId,
    /// What happened.
    pub kind: EventKind,
    /// Operand value ids within the same frame. For phis, only the chosen
    /// incoming; for calls, the arguments.
    pub operands: &'a [ValueId],
}

/// Receives one callback per retired instruction.
pub trait ExecObserver {
    /// Called after the instruction's architectural effects are applied.
    fn on_event(&mut self, ev: &Event<'_>);
}

/// An observer that ignores everything (pure functional execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl ExecObserver for NullObserver {
    fn on_event(&mut self, _ev: &Event<'_>) {}
}

/// An observer that counts retired instructions by class — enough for the
/// paper's dynamic-instruction-overhead measurements (Fig. 8).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingObserver {
    /// Total retired instructions.
    pub total: u64,
    /// Demand loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Software prefetches.
    pub prefetches: u64,
    /// Branches.
    pub branches: u64,
}

impl ExecObserver for CountingObserver {
    fn on_event(&mut self, ev: &Event<'_>) {
        self.total += 1;
        match ev.kind {
            EventKind::Load { .. } => self.loads += 1,
            EventKind::Store { .. } => self.stores += 1,
            EventKind::Prefetch { .. } => self.prefetches += 1,
            EventKind::Branch { .. } => self.branches += 1,
            _ => {}
        }
    }
}

/// Base of the simulated heap; addresses below this always fault.
pub const HEAP_BASE: u64 = 0x1_0000;

/// Flat byte-addressed memory with a bump allocator.
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<u8>,
    limit: u64,
}

impl Memory {
    /// Create an empty memory with the given capacity limit in bytes.
    #[must_use]
    pub fn with_limit(limit: u64) -> Self {
        Memory {
            data: Vec::new(),
            limit,
        }
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.data.len() as u64
    }

    /// Allocate `size` bytes aligned to 64 and return the base address.
    ///
    /// # Errors
    /// [`Trap::OutOfMemory`] if the limit would be exceeded.
    pub fn alloc(&mut self, size: u64) -> Result<u64, Trap> {
        let aligned = self.data.len().next_multiple_of(64);
        let end = aligned as u64 + size;
        if end > self.limit {
            return Err(Trap::OutOfMemory);
        }
        self.data.resize(end as usize, 0);
        Ok(HEAP_BASE + aligned as u64)
    }

    #[inline]
    fn check(&self, addr: u64, size: u32) -> Result<usize, Trap> {
        let off = addr.wrapping_sub(HEAP_BASE);
        if addr < HEAP_BASE || off + u64::from(size) > self.data.len() as u64 {
            return Err(Trap::MemFault { addr, size });
        }
        Ok(off as usize)
    }

    /// Whether `[addr, addr+size)` lies within allocated memory.
    #[must_use]
    pub fn is_valid(&self, addr: u64, size: u32) -> bool {
        self.check(addr, size).is_ok()
    }

    /// Read an unsigned little-endian scalar.
    ///
    /// # Errors
    /// [`Trap::MemFault`] when out of bounds.
    pub fn read(&self, addr: u64, size: u32) -> Result<u64, Trap> {
        let off = self.check(addr, size)?;
        let mut buf = [0u8; 8];
        buf[..size as usize].copy_from_slice(&self.data[off..off + size as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Write a little-endian scalar.
    ///
    /// # Errors
    /// [`Trap::MemFault`] when out of bounds.
    pub fn write(&mut self, addr: u64, size: u32, value: u64) -> Result<(), Trap> {
        let off = self.check(addr, size)?;
        let bytes = value.to_le_bytes();
        self.data[off..off + size as usize].copy_from_slice(&bytes[..size as usize]);
        Ok(())
    }
}

/// How far a [`Interp::step`] call got.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// One instruction retired; more remain.
    Continue,
    /// Top-level function returned with this value.
    Done(Option<RtVal>),
}

/// Which execution tier the [`Interp`] facade drives. All three tiers
/// are bit-identical in architectural results and retire-event streams;
/// they differ only in throughput. `Classic` and `Engine` survive as
/// differential oracles for the bytecode tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The original tree-walking interpreter (`crate::classic`).
    Classic,
    /// The decoded [`ExecImage`] engine (`crate::exec`).
    Engine,
    /// The fixed-width bytecode engine with fused superinstructions
    /// (`crate::bytecode`); the default.
    Bytecode,
}

impl Tier {
    /// Read the tier from `SWPF_TIER` (`classic` | `engine` |
    /// `bytecode`); unset or empty defaults to [`Tier::Bytecode`].
    ///
    /// # Panics
    /// On an unrecognised value — a misspelled tier silently running a
    /// different engine would invalidate comparisons.
    #[must_use]
    pub fn from_env() -> Tier {
        match std::env::var("SWPF_TIER") {
            Ok(v) if v.is_empty() => Tier::Bytecode,
            Ok(v) => match v.as_str() {
                "classic" => Tier::Classic,
                "engine" => Tier::Engine,
                "bytecode" => Tier::Bytecode,
                other => panic!("SWPF_TIER must be classic|engine|bytecode, got {other:?}"),
            },
            Err(_) => Tier::Bytecode,
        }
    }

    /// Stable lowercase name (artifact metadata, logs).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Tier::Classic => "classic",
            Tier::Engine => "engine",
            Tier::Bytecode => "bytecode",
        }
    }
}

/// Forward an observer generically so the classic tier's `&mut dyn`
/// API can accept the facade's `impl ExecObserver + ?Sized` parameter.
struct DynObs<'a, O: ExecObserver + ?Sized>(&'a mut O);

impl<O: ExecObserver + ?Sized> ExecObserver for DynObs<'_, O> {
    #[inline]
    fn on_event(&mut self, ev: &Event<'_>) {
        self.0.on_event(ev);
    }
}

/// The active execution cursor. `Classic` carries its own memory (the
/// tree-walker predates the split); the other tiers use the facade's.
enum Cursor {
    Engine(Engine),
    Bytecode(BcEngine),
    Classic(Box<ClassicInterp>),
}

/// The interpreter facade: simulated memory plus a resumable execution
/// cursor on one of three [`Tier`]s (default: the bytecode tier, or
/// `SWPF_TIER` if set).
///
/// [`Interp::start`] decodes the module into an [`ExecImage`]; callers
/// that run the same module on many interpreters (e.g. multicore
/// simulations) should decode once and use [`Interp::start_with_image`].
///
/// Tier-selection caveats: the classic tier needs the source `Module`
/// on every step, so image-only entry points ([`Interp::start_with_image`],
/// [`Interp::run_with_image`]) transparently drop to the engine tier
/// under `SWPF_TIER=classic` (the retired count and fuel budget carry
/// over). The bytecode tier drops to the engine tier for images that
/// exceed its 14-bit encoding capacities (`bytecode::LowerError`) —
/// lowering failures are never an execution error.
pub struct Interp {
    mem: Memory,
    tier: Tier,
    cursor: Cursor,
    /// Configured fuel budget (facade-level; survives cursor switches).
    fuel: u64,
    /// Instructions retired by previous cursors (before a tier switch).
    retired_base: u64,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// Create an interpreter with a 1 GiB heap limit on the tier
    /// selected by `SWPF_TIER` (default: bytecode).
    #[must_use]
    pub fn new() -> Self {
        Self::with_heap_limit(1 << 30)
    }

    /// Create an interpreter with an explicit heap limit in bytes.
    #[must_use]
    pub fn with_heap_limit(limit: u64) -> Self {
        Self::with_heap_limit_and_tier(limit, Tier::from_env())
    }

    /// Create an interpreter on an explicit tier (ignoring `SWPF_TIER`)
    /// with a 1 GiB heap limit.
    #[must_use]
    pub fn with_tier(tier: Tier) -> Self {
        Self::with_heap_limit_and_tier(1 << 30, tier)
    }

    /// Create an interpreter with an explicit heap limit and tier.
    #[must_use]
    pub fn with_heap_limit_and_tier(limit: u64, tier: Tier) -> Self {
        let cursor = match tier {
            Tier::Classic => Cursor::Classic(Box::new(ClassicInterp::with_heap_limit(limit))),
            Tier::Engine => Cursor::Engine(Engine::new()),
            Tier::Bytecode => Cursor::Bytecode(BcEngine::new()),
        };
        Interp {
            mem: Memory::with_limit(limit),
            tier,
            cursor,
            fuel: u64::MAX,
            retired_base: 0,
        }
    }

    /// The tier this interpreter was constructed on.
    #[must_use]
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Access the simulated memory (e.g. to initialise workload arrays).
    pub fn mem(&mut self) -> &mut Memory {
        match &mut self.cursor {
            Cursor::Classic(c) => c.mem(),
            _ => &mut self.mem,
        }
    }

    /// Read-only view of the simulated memory.
    #[must_use]
    pub fn mem_ref(&self) -> &Memory {
        match &self.cursor {
            Cursor::Classic(c) => c.mem_ref(),
            _ => &self.mem,
        }
    }

    /// Total instructions retired since construction.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired_base
            + match &self.cursor {
                Cursor::Engine(e) => e.retired(),
                Cursor::Bytecode(b) => b.retired(),
                Cursor::Classic(c) => c.retired(),
            }
    }

    /// Limit the number of instructions that may retire before
    /// [`Trap::OutOfFuel`]; defaults to unlimited.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
        let local = fuel.saturating_sub(self.retired_base);
        match &mut self.cursor {
            Cursor::Engine(e) => e.set_fuel(local),
            Cursor::Bytecode(b) => b.set_fuel(local),
            Cursor::Classic(c) => c.set_fuel(local),
        }
    }

    /// Allocate and zero-fill an array; convenience for workload setup.
    ///
    /// # Errors
    /// [`Trap::OutOfMemory`] if the heap limit would be exceeded.
    pub fn alloc_array(&mut self, elems: u64, elem_size: u32) -> Result<u64, Trap> {
        self.mem().alloc(elems * u64::from(elem_size))
    }

    /// Switch the cursor, folding the outgoing cursor's retired count
    /// into the base and re-deriving the new cursor's local fuel so the
    /// facade-level budget is unaffected by the switch. The classic
    /// tier owns its memory, so switching away (or back) migrates the
    /// heap.
    fn switch_cursor(&mut self, make: impl FnOnce() -> Cursor) {
        self.retired_base = self.retired();
        let mut next = make();
        if let Cursor::Classic(old) = &mut self.cursor {
            // Leaving classic: adopt its heap as the facade's.
            self.mem = std::mem::replace(old.mem(), Memory::with_limit(0));
        }
        if let Cursor::Classic(new) = &mut next {
            // Entering classic: hand the facade's heap over.
            *new.mem() = std::mem::replace(&mut self.mem, Memory::with_limit(0));
        }
        self.cursor = next;
        let local = self.fuel.saturating_sub(self.retired_base);
        match &mut self.cursor {
            Cursor::Engine(e) => e.set_fuel(local),
            Cursor::Bytecode(b) => b.set_fuel(local),
            Cursor::Classic(c) => c.set_fuel(local),
        }
    }

    /// The engine cursor, switching to it if another tier is active.
    fn ensure_engine(&mut self) -> &mut Engine {
        if !matches!(self.cursor, Cursor::Engine(_)) {
            self.switch_cursor(|| Cursor::Engine(Engine::new()));
        }
        match &mut self.cursor {
            Cursor::Engine(e) => e,
            _ => unreachable!(),
        }
    }

    /// The bytecode cursor, switching to it if another tier is active.
    fn ensure_bytecode(&mut self) -> &mut BcEngine {
        if !matches!(self.cursor, Cursor::Bytecode(_)) {
            self.switch_cursor(|| Cursor::Bytecode(BcEngine::new()));
        }
        match &mut self.cursor {
            Cursor::Bytecode(b) => b,
            _ => unreachable!(),
        }
    }

    /// The classic cursor, switching to it if another tier is active.
    fn ensure_classic(&mut self) -> &mut ClassicInterp {
        if !matches!(self.cursor, Cursor::Classic(_)) {
            self.switch_cursor(|| Cursor::Classic(Box::new(ClassicInterp::with_heap_limit(0))));
        }
        match &mut self.cursor {
            Cursor::Classic(c) => c,
            _ => unreachable!(),
        }
    }

    /// Route an image start to the tier-appropriate cursor (the shared
    /// tail of every image-bearing entry point).
    fn start_image(&mut self, image: Arc<ExecImage>, func: FuncId, args: &[RtVal]) {
        if self.tier == Tier::Bytecode {
            if let Some(bc) = image.bytecode() {
                self.ensure_bytecode().start(bc, func, args);
                return;
            }
            // Lowering failed (capacity overflow): degrade to the
            // engine tier for this image. `ExecImage::bytecode` warns
            // once per image.
        }
        self.ensure_engine().start(image, func, args);
    }

    /// Begin executing `func` with `args`, decoding `module` into a
    /// fresh [`ExecImage`] (or walking it directly on the classic
    /// tier). Any previous cursor state is discarded; allocated memory
    /// is retained.
    ///
    /// # Panics
    /// If the argument count does not match the signature.
    pub fn start(&mut self, module: &Module, func: FuncId, args: &[RtVal]) {
        if self.tier == Tier::Classic {
            self.ensure_classic().start(module, func, args);
            return;
        }
        self.start_image(Arc::new(ExecImage::build(module)), func, args);
    }

    /// Begin executing `func` from an already-decoded image, skipping
    /// the decode pass. The image must have been built from the module
    /// later passed to [`Interp::step`]. Image-only, so the classic
    /// tier (which re-reads the module each step) drops to the engine
    /// tier here.
    ///
    /// # Panics
    /// If the argument count does not match the signature.
    pub fn start_with_image(&mut self, image: Arc<ExecImage>, func: FuncId, args: &[RtVal]) {
        self.start_image(image, func, args);
    }

    /// Run to completion with the given observer.
    ///
    /// # Errors
    /// Any [`Trap`] raised during execution.
    pub fn run(
        &mut self,
        module: &Module,
        func: FuncId,
        args: &[RtVal],
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Option<RtVal>, Trap> {
        if self.tier == Tier::Classic {
            let c = self.ensure_classic();
            return c.run(module, func, args, &mut DynObs(obs));
        }
        self.start(module, func, args);
        match &mut self.cursor {
            Cursor::Engine(e) => e.run_to_done(&mut self.mem, obs),
            Cursor::Bytecode(b) => b.run_to_done(&mut self.mem, obs),
            Cursor::Classic(_) => unreachable!("non-classic start"),
        }
    }

    /// Run to completion from an already-decoded image, skipping the
    /// decode pass (the amortised shape every repeated-simulation caller
    /// wants; the throughput bench and multicore runner use it).
    /// Image-only: see [`Interp::start_with_image`] for the classic-tier
    /// caveat.
    ///
    /// # Errors
    /// Any [`Trap`] raised during execution.
    pub fn run_with_image(
        &mut self,
        image: Arc<ExecImage>,
        func: FuncId,
        args: &[RtVal],
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Option<RtVal>, Trap> {
        self.start_image(image, func, args);
        match &mut self.cursor {
            Cursor::Engine(e) => e.run_to_done(&mut self.mem, obs),
            Cursor::Bytecode(b) => b.run_to_done(&mut self.mem, obs),
            Cursor::Classic(_) => unreachable!("image starts never select classic"),
        }
    }

    /// Execute and retire exactly one instruction.
    ///
    /// `module` must be the module whose image the cursor was started
    /// with; the classic tier re-reads it every step, the other tiers
    /// accept (and ignore) it for API compatibility.
    ///
    /// # Errors
    /// Any [`Trap`] raised by the instruction.
    ///
    /// # Panics
    /// If called without an active cursor (no `start`, or after `Done`).
    #[inline]
    pub fn step(
        &mut self,
        module: &Module,
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Step, Trap> {
        match &mut self.cursor {
            Cursor::Classic(c) => c.step(module, &mut DynObs(obs)),
            _ => self.step_cursor(obs),
        }
    }

    /// Execute and retire exactly one instruction of the active cursor,
    /// without needing the source module — the natural shape for callers
    /// that started from a pre-decoded image ([`Interp::start_with_image`])
    /// and never held the `Module` at all.
    ///
    /// # Errors
    /// Any [`Trap`] raised by the instruction.
    ///
    /// # Panics
    /// If called without an active cursor (no `start`, or after `Done`),
    /// or on a classic-tier cursor (the classic engine cannot step
    /// without its module — use [`Interp::step`]).
    #[inline]
    pub fn step_cursor(&mut self, obs: &mut (impl ExecObserver + ?Sized)) -> Result<Step, Trap> {
        match &mut self.cursor {
            Cursor::Engine(e) => e.step(&mut self.mem, obs),
            Cursor::Bytecode(b) => b.step(&mut self.mem, obs),
            Cursor::Classic(_) => panic!(
                "step_cursor() on the classic tier: the classic engine re-reads the module \
                 every step; use Interp::step(module, obs) or another SWPF_TIER"
            ),
        }
    }
}

#[inline(always)]
pub(crate) fn decode_scalar(raw: u64, ty: Type) -> RtVal {
    match ty {
        Type::F64 => RtVal::Float(f64::from_bits(raw)),
        Type::I1 => RtVal::Int(i64::from(raw & 1 != 0)),
        Type::I8 => RtVal::Int(raw as u8 as i64),
        Type::I16 => RtVal::Int(raw as u16 as i64),
        Type::I32 => RtVal::Int(raw as u32 as i64),
        Type::I64 | Type::Ptr => RtVal::Int(raw as i64),
    }
}

#[inline(always)]
pub(crate) fn encode_scalar(v: RtVal) -> u64 {
    match v {
        RtVal::Int(x) => x as u64,
        RtVal::Float(x) => x.to_bits(),
    }
}

#[inline(always)]
pub(crate) fn eval_binary(op: BinOp, lhs: RtVal, rhs: RtVal) -> Result<RtVal, Trap> {
    if op.is_float() {
        let (a, b) = (lhs.as_f64(), rhs.as_f64());
        let r = match op {
            BinOp::Fadd => a + b,
            BinOp::Fsub => a - b,
            BinOp::Fmul => a * b,
            BinOp::Fdiv => a / b,
            _ => unreachable!(),
        };
        return Ok(RtVal::Float(r));
    }
    let (a, b) = (lhs.as_int(), rhs.as_int());
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Sdiv => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a.wrapping_div(b)
        }
        BinOp::Udiv => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            ((a as u64) / (b as u64)) as i64
        }
        BinOp::Srem => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a.wrapping_rem(b)
        }
        BinOp::Urem => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            ((a as u64) % (b as u64)) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Lshr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        BinOp::Ashr => a.wrapping_shr(b as u32 & 63),
        _ => unreachable!("float ops handled above"),
    };
    Ok(RtVal::Int(r))
}

#[inline(always)]
pub(crate) fn eval_icmp(pred: Pred, a: i64, b: i64) -> bool {
    let (ua, ub) = (a as u64, b as u64);
    match pred {
        Pred::Eq => a == b,
        Pred::Ne => a != b,
        Pred::Slt => a < b,
        Pred::Sle => a <= b,
        Pred::Sgt => a > b,
        Pred::Sge => a >= b,
        Pred::Ult => ua < ub,
        Pred::Ule => ua <= ub,
        Pred::Ugt => ua > ub,
        Pred::Uge => ua >= ub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CastOp;
    use crate::verifier::verify_module;

    fn run_fn(m: &Module, name: &str, args: &[RtVal]) -> Result<Option<RtVal>, Trap> {
        verify_module(m).expect("module verifies");
        let f = m.find_function(name).expect("function exists");
        let mut interp = Interp::new();
        interp.run(m, f, args, &mut NullObserver)
    }

    #[test]
    fn arithmetic_and_select() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (x, y) = (b.arg(0), b.arg(1));
            let mn = b.smin(x, y);
            b.ret(Some(mn));
        }
        let r = run_fn(&m, "f", &[RtVal::Int(9), RtVal::Int(4)]).unwrap();
        assert_eq!(r, Some(RtVal::Int(4)));
        let r = run_fn(&m, "f", &[RtVal::Int(-3), RtVal::Int(4)]).unwrap();
        assert_eq!(r, Some(RtVal::Int(-3)));
    }

    #[test]
    fn loop_sums_array() {
        let mut m = Module::new("t");
        let fid = m.declare_function("sum", &[Type::Ptr, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (a, n) = (b.arg(0), b.arg(1));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let acc = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let addr = b.gep(a, i, 4);
            let narrow = b.load(Type::I32, addr);
            let val = b.cast(CastOp::Zext, narrow, Type::I64);
            let acc2 = b.add(acc, val);
            let one = b.const_i64(1);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(header);
            b.switch_to(exit);
            b.ret(Some(acc));
        }
        verify_module(&m).unwrap();
        let f = m.find_function("sum").unwrap();
        let mut interp = Interp::new();
        let base = interp.alloc_array(10, 4).unwrap();
        for i in 0..10u64 {
            interp.mem().write(base + i * 4, 4, i + 1).unwrap();
        }
        let r = interp
            .run(
                &m,
                f,
                &[RtVal::Int(base as i64), RtVal::Int(10)],
                &mut NullObserver,
            )
            .unwrap();
        assert_eq!(r, Some(RtVal::Int(55)));
    }

    #[test]
    fn phi_parallel_copy_swap() {
        // Classic swap test: (a, b) = (b, a) each iteration; after an odd
        // number of iterations the values are exchanged. Sequential phi
        // evaluation would corrupt one of them.
        let mut m = Module::new("t");
        let fid = m.declare_function("swap", &[Type::I64, Type::I64, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (x0, y0, n) = (b.arg(0), b.arg(1), b.arg(2));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let a = b.phi(Type::I64, &[(entry, x0)]);
            let bb = b.phi(Type::I64, &[(entry, y0)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let one = b.const_i64(1);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(a, body, bb); // a <- b
            b.add_phi_incoming(bb, body, a); // b <- a (parallel!)
            b.br(header);
            b.switch_to(exit);
            // return a * 1000 + b
            let k = b.const_i64(1000);
            let am = b.mul(a, k);
            let r = b.add(am, bb);
            b.ret(Some(r));
        }
        let r = run_fn(&m, "swap", &[RtVal::Int(1), RtVal::Int(2), RtVal::Int(3)]).unwrap();
        // After 3 swaps: a=2, b=1.
        assert_eq!(r, Some(RtVal::Int(2001)));
    }

    #[test]
    fn out_of_bounds_load_traps() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let p = b.arg(0);
            let v = b.load(Type::I64, p);
            b.ret(Some(v));
        }
        let err = run_fn(&m, "f", &[RtVal::Int(0x20)]).unwrap_err();
        assert!(matches!(err, Trap::MemFault { .. }));
    }

    #[test]
    fn prefetch_to_bad_address_does_not_trap() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let p = b.arg(0);
            b.prefetch(p);
            b.ret(None);
        }
        let mut seen_invalid = false;
        struct Watch<'a>(&'a mut bool);
        impl ExecObserver for Watch<'_> {
            fn on_event(&mut self, ev: &Event<'_>) {
                if let EventKind::Prefetch { valid, .. } = ev.kind {
                    if !valid {
                        *self.0 = true;
                    }
                }
            }
        }
        verify_module(&m).unwrap();
        let f = m.find_function("f").unwrap();
        let mut interp = Interp::new();
        interp
            .run(&m, f, &[RtVal::Int(0x20)], &mut Watch(&mut seen_invalid))
            .unwrap();
        assert!(seen_invalid, "invalid prefetch should be flagged, not trap");
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let d = b.binary(BinOp::Sdiv, b.arg(0), b.arg(1));
            b.ret(Some(d));
        }
        let err = run_fn(&m, "f", &[RtVal::Int(5), RtVal::Int(0)]).unwrap_err();
        assert_eq!(err, Trap::DivByZero);
    }

    #[test]
    fn fuel_limits_execution() {
        let mut m = Module::new("t");
        let fid = m.declare_function("spin", &[], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let lp = b.create_block("lp");
            b.br(lp);
            b.switch_to(lp);
            b.br(lp);
            let _ = entry;
        }
        verify_module(&m).unwrap();
        let f = m.find_function("spin").unwrap();
        let mut interp = Interp::new();
        interp.set_fuel(1000);
        let err = interp.run(&m, f, &[], &mut NullObserver).unwrap_err();
        assert_eq!(err, Trap::OutOfFuel);
    }

    #[test]
    fn calls_pass_args_and_return() {
        let mut m = Module::new("t");
        let sq = m.declare_function("sq", &[Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(sq));
            let x = b.arg(0);
            let r = b.mul(x, x);
            b.ret(Some(r));
        }
        let fid = m.declare_function("f", &[Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let x = b.arg(0);
            let s = b.call(sq, &[x], Some(Type::I64));
            let one = b.const_i64(1);
            let r = b.add(s, one);
            b.ret(Some(r));
        }
        let r = run_fn(&m, "f", &[RtVal::Int(7)]).unwrap();
        assert_eq!(r, Some(RtVal::Int(50)));
    }

    #[test]
    fn counting_observer_counts() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let p = b.arg(0);
            let v = b.load(Type::I64, p);
            b.store(v, p);
            b.prefetch(p);
            b.ret(None);
        }
        verify_module(&m).unwrap();
        let f = m.find_function("f").unwrap();
        let mut interp = Interp::new();
        let base = interp.alloc_array(1, 8).unwrap();
        let mut counts = CountingObserver::default();
        interp
            .run(&m, f, &[RtVal::Int(base as i64)], &mut counts)
            .unwrap();
        assert_eq!(counts.loads, 1);
        assert_eq!(counts.stores, 1);
        assert_eq!(counts.prefetches, 1);
        assert_eq!(counts.total, 4);
    }

    #[test]
    fn narrow_loads_zero_extend() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let v = b.load(Type::I8, b.arg(0));
            let wide = b.cast(CastOp::Zext, v, Type::I64);
            b.ret(Some(wide));
        }
        verify_module(&m).unwrap();
        let f = m.find_function("f").unwrap();
        let mut interp = Interp::new();
        let base = interp.alloc_array(1, 8).unwrap();
        interp.mem().write(base, 1, 0xFF).unwrap();
        let r = interp
            .run(&m, f, &[RtVal::Int(base as i64)], &mut NullObserver)
            .unwrap();
        assert_eq!(r, Some(RtVal::Int(255)));
    }

    #[test]
    fn shared_image_across_interpreters() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let two = b.const_i64(2);
            let r = b.mul(b.arg(0), two);
            b.ret(Some(r));
        }
        let image = Arc::new(ExecImage::build(&m));
        for i in 0..4i64 {
            let mut interp = Interp::new();
            interp.start_with_image(Arc::clone(&image), fid, &[RtVal::Int(i)]);
            let r = loop {
                match interp.step(&m, &mut NullObserver).unwrap() {
                    Step::Continue => {}
                    Step::Done(v) => break v,
                }
            };
            assert_eq!(r, Some(RtVal::Int(2 * i)));
        }
    }
}
