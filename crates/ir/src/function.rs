//! Functions: value arenas plus a CFG of basic blocks.

use crate::block::{Block, BlockId};
use crate::inst::{Inst, InstKind};
use crate::types::Type;
use crate::value::{Constant, ValueData, ValueId, ValueKind};
use std::fmt;

/// Index of a function within its [`Module`](crate::module::Module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The arena slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Side-effect contract of a function, used by the prefetching pass when
/// deciding whether a call may appear in prefetch address-generation code
/// (§4.1 of the paper: calls are rejected unless provably side-effect
/// free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purity {
    /// May write memory or otherwise have observable effects.
    Impure,
    /// Reads memory at most; multiple executions are unobservable.
    ReadOnly,
    /// No memory access at all (a pure computation such as a hash mix).
    Pure,
}

/// A function: formal parameters, a value arena and basic blocks.
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter types, in order.
    pub params: Vec<Type>,
    /// Return type; `None` for void functions.
    pub ret: Option<Type>,
    /// Declared side-effect contract (checked against the body by
    /// [`crate::verifier::verify_module`]).
    pub purity: Purity,
    /// All values: arguments first, then constants/instructions in
    /// creation order.
    values: Vec<ValueData>,
    /// Basic blocks; index 0 is the entry block.
    blocks: Vec<Block>,
}

impl Function {
    /// Create a function with the given signature and an empty entry block.
    #[must_use]
    pub fn new(name: impl Into<String>, params: &[Type], ret: impl Into<Option<Type>>) -> Self {
        let mut f = Function {
            name: name.into(),
            params: params.to_vec(),
            ret: ret.into(),
            purity: Purity::Impure,
            values: Vec::new(),
            blocks: vec![Block::with_name("entry")],
        };
        for (i, &ty) in params.iter().enumerate() {
            f.values.push(ValueData {
                ty: Some(ty),
                kind: ValueKind::Arg { index: i as u32 },
                name: None,
            });
        }
        f
    }

    /// The entry block id (always block 0).
    #[must_use]
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The value id of the `index`-th formal parameter.
    ///
    /// # Panics
    /// If `index` is out of range.
    #[must_use]
    pub fn arg(&self, index: usize) -> ValueId {
        assert!(index < self.params.len(), "argument index out of range");
        ValueId(index as u32)
    }

    /// Number of values in the arena (arguments + constants + instructions).
    #[must_use]
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate over all block ids in creation order (entry first).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Immutable access to a block.
    #[must_use]
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Append a new empty block and return its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::with_name(name));
        id
    }

    /// Immutable access to a value table entry.
    #[must_use]
    pub fn value(&self, v: ValueId) -> &ValueData {
        &self.values[v.index()]
    }

    /// Mutable access to a value table entry.
    pub fn value_mut(&mut self, v: ValueId) -> &mut ValueData {
        &mut self.values[v.index()]
    }

    /// The instruction payload of `v`, or `None` if `v` is an argument or
    /// constant.
    #[must_use]
    pub fn inst(&self, v: ValueId) -> Option<&Inst> {
        self.values[v.index()].as_inst()
    }

    /// Mutable instruction payload of `v`.
    pub fn inst_mut(&mut self, v: ValueId) -> Option<&mut Inst> {
        self.values[v.index()].as_inst_mut()
    }

    /// The constant payload of `v`, if it is a constant.
    #[must_use]
    pub fn constant(&self, v: ValueId) -> Option<Constant> {
        match self.values[v.index()].kind {
            ValueKind::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Whether `v` is a constant integer equal to `n`.
    #[must_use]
    pub fn is_const_int(&self, v: ValueId, n: i64) -> bool {
        matches!(self.constant(v), Some(Constant::Int(x, _)) if x == n)
    }

    /// Intern a constant, reusing an existing slot when one matches.
    pub fn add_const(&mut self, c: Constant) -> ValueId {
        // Linear scan: functions have few distinct constants and this keeps
        // the arena free of auxiliary maps.
        for (i, vd) in self.values.iter().enumerate() {
            if let ValueKind::Const(existing) = &vd.kind {
                let equal = match (existing, &c) {
                    (Constant::Int(a, ta), Constant::Int(b, tb)) => a == b && ta == tb,
                    (Constant::Float(a), Constant::Float(b)) => a.to_bits() == b.to_bits(),
                    _ => false,
                };
                if equal {
                    return ValueId(i as u32);
                }
            }
        }
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueData {
            ty: Some(c.ty()),
            kind: ValueKind::Const(c),
            name: None,
        });
        id
    }

    /// Shorthand for interning an `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.add_const(Constant::Int(v, Type::I64))
    }

    /// Create an instruction value *without* placing it in any block.
    ///
    /// Used by the prefetch code generator, which clones address
    /// computations and then splices them in with
    /// [`Function::insert_before`].
    pub fn create_inst(&mut self, kind: InstKind, ty: Option<Type>, block: BlockId) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueData {
            ty,
            kind: ValueKind::Inst(Inst { kind, block }),
            name: None,
        });
        id
    }

    /// Append an already-created instruction to the end of its block.
    pub fn push_inst(&mut self, inst: ValueId) {
        let b = self.values[inst.index()]
            .as_inst()
            .expect("push_inst on non-instruction")
            .block;
        self.blocks[b.index()].insts.push(inst);
    }

    /// Insert instruction `inst` immediately before `before` in `before`'s
    /// block, updating `inst`'s block field.
    ///
    /// # Panics
    /// If `before` is not placed in a block.
    pub fn insert_before(&mut self, before: ValueId, inst: ValueId) {
        let b = self.values[before.index()]
            .as_inst()
            .expect("insert_before target is not an instruction")
            .block;
        let pos = self.blocks[b.index()]
            .position_of(before)
            .expect("insert_before target not found in its block");
        if let Some(i) = self.values[inst.index()].as_inst_mut() {
            i.block = b;
        }
        self.blocks[b.index()].insts.insert(pos, inst);
    }

    /// Insert instruction `inst` at the front of block `b`, after any phis.
    pub fn insert_at_block_start(&mut self, b: BlockId, inst: ValueId) {
        let pos = self.blocks[b.index()]
            .insts
            .iter()
            .position(|&v| !matches!(self.inst(v).map(|i| &i.kind), Some(InstKind::Phi { .. })))
            .unwrap_or(self.blocks[b.index()].insts.len());
        if let Some(i) = self.values[inst.index()].as_inst_mut() {
            i.block = b;
        }
        self.blocks[b.index()].insts.insert(pos, inst);
    }

    /// Compute predecessor lists for every block.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            if let Some(term) = self.block(b).last() {
                if let Some(inst) = self.inst(term) {
                    for s in inst.successors() {
                        preds[s.index()].push(b);
                    }
                }
            }
        }
        preds
    }

    /// Successor blocks of `b` (empty if the block lacks a terminator).
    #[must_use]
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.block(b)
            .last()
            .and_then(|t| self.inst(t).map(|i| i.successors()))
            .unwrap_or_default()
    }

    /// Iterate over the instruction ids of every block, in block order.
    pub fn all_insts(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.blocks.iter().flat_map(|b| b.insts.iter().copied())
    }

    /// Count instructions placed in blocks (excludes detached values).
    #[must_use]
    pub fn num_placed_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// All placed users of value `v`, as instruction ids.
    #[must_use]
    pub fn users_of(&self, v: ValueId) -> Vec<ValueId> {
        let mut users = Vec::new();
        let mut ops = Vec::new();
        for i in self.all_insts() {
            if let Some(inst) = self.inst(i) {
                ops.clear();
                inst.operands_into(&mut ops);
                if ops.contains(&v) {
                    users.push(i);
                }
            }
        }
        users
    }

    /// Give `v` a debug name, shown by the printer.
    pub fn set_name(&mut self, v: ValueId, name: impl Into<String>) {
        self.values[v.index()].name = Some(name.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    fn sample() -> Function {
        Function::new("f", &[Type::I64, Type::I64], Type::I64)
    }

    #[test]
    fn args_are_first_values() {
        let f = sample();
        assert_eq!(f.arg(0), ValueId(0));
        assert_eq!(f.arg(1), ValueId(1));
        assert_eq!(f.value(f.arg(0)).ty, Some(Type::I64));
    }

    #[test]
    #[should_panic(expected = "argument index out of range")]
    fn arg_out_of_range_panics() {
        let f = sample();
        let _ = f.arg(2);
    }

    #[test]
    fn constants_are_interned() {
        let mut f = sample();
        let a = f.const_i64(42);
        let b = f.const_i64(42);
        let c = f.const_i64(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Same bits, different type: distinct slots.
        let d = f.add_const(Constant::Int(42, Type::I32));
        assert_ne!(a, d);
    }

    #[test]
    fn float_constants_interned_by_bits() {
        let mut f = sample();
        let a = f.add_const(Constant::Float(1.5));
        let b = f.add_const(Constant::Float(1.5));
        assert_eq!(a, b);
        let nz = f.add_const(Constant::Float(-0.0));
        let pz = f.add_const(Constant::Float(0.0));
        assert_ne!(nz, pz, "signed zeros are distinct constants");
    }

    #[test]
    fn insert_before_places_in_same_block() {
        let mut f = sample();
        let entry = f.entry();
        let c = f.const_i64(1);
        let add = f.create_inst(
            InstKind::Binary {
                op: BinOp::Add,
                lhs: f.arg(0),
                rhs: c,
            },
            Some(Type::I64),
            entry,
        );
        f.push_inst(add);
        let ret = f.create_inst(InstKind::Ret { value: Some(add) }, None, entry);
        f.push_inst(ret);

        let mul = f.create_inst(
            InstKind::Binary {
                op: BinOp::Mul,
                lhs: f.arg(0),
                rhs: c,
            },
            Some(Type::I64),
            entry,
        );
        f.insert_before(ret, mul);
        assert_eq!(f.block(entry).insts, vec![add, mul, ret]);
    }

    #[test]
    fn users_and_predecessors() {
        let mut f = sample();
        let entry = f.entry();
        let b2 = f.add_block("next");
        let br = f.create_inst(InstKind::Br { target: b2 }, None, entry);
        f.push_inst(br);
        let ret = f.create_inst(
            InstKind::Ret {
                value: Some(f.arg(0)),
            },
            None,
            b2,
        );
        f.push_inst(ret);
        assert_eq!(f.predecessors()[b2.index()], vec![entry]);
        assert_eq!(f.successors(entry), vec![b2]);
        assert_eq!(f.users_of(f.arg(0)), vec![ret]);
    }
}
