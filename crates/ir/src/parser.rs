//! Parser for the textual form produced by [`crate::printer`].
//!
//! The grammar is exactly what the printer emits; see the printer docs.
//! Comments start with `;` and run to end of line.

use crate::block::BlockId;
use crate::function::{FuncId, Purity};
use crate::inst::{BinOp, CastOp, InstKind, Pred};
use crate::module::Module;
use crate::types::Type;
use crate::value::{Constant, ValueId};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with a line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parse a module from its textual form.
///
/// # Errors
/// Returns a [`ParseError`] describing the first malformed line.
pub fn parse_module(text: &str) -> PResult<Module> {
    let lines: Vec<(usize, String)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let no_comment = match l.find(';') {
                Some(p) => &l[..p],
                None => l,
            };
            (i + 1, no_comment.trim().to_string())
        })
        .filter(|(_, l)| !l.is_empty())
        .collect();

    let mut idx = 0;
    let err = |line: usize, msg: &str| ParseError {
        line,
        message: msg.to_string(),
    };

    let (first_line, first) = lines.first().ok_or_else(|| err(1, "empty input"))?.clone();
    let name = first
        .strip_prefix("module ")
        .ok_or_else(|| err(first_line, "expected `module <name>`"))?
        .trim()
        .to_string();
    let mut m = Module::new(name);
    idx += 1;

    // First pass: collect function headers so calls can resolve by name.
    let mut headers = Vec::new();
    for (ln, l) in lines.iter().skip(1) {
        if l.starts_with("func @") {
            headers.push(parse_header(*ln, l)?);
        }
    }
    for h in &headers {
        let fid = m.declare_function(h.name.clone(), &h.params, h.ret);
        m.function_mut(fid).purity = h.purity;
    }

    // Second pass: bodies.
    let mut fcount = 0usize;
    while idx < lines.len() {
        let (ln, l) = &lines[idx];
        if !l.starts_with("func @") {
            return Err(err(*ln, "expected `func`"));
        }
        let fid = FuncId(fcount as u32);
        fcount += 1;
        idx = parse_body(&mut m, fid, &lines, idx + 1)?;
    }
    Ok(m)
}

struct Header {
    name: String,
    params: Vec<Type>,
    ret: Option<Type>,
    purity: Purity,
}

fn parse_header(line: usize, l: &str) -> PResult<Header> {
    let perr = |msg: &str| ParseError {
        line,
        message: msg.to_string(),
    };
    let rest = l.strip_prefix("func @").ok_or_else(|| perr("not a func"))?;
    let open = rest.find('(').ok_or_else(|| perr("missing `(`"))?;
    let name = rest[..open].to_string();
    let close = rest.find(')').ok_or_else(|| perr("missing `)`"))?;
    let params_text = &rest[open + 1..close];
    let mut params = Vec::new();
    for p in params_text.split(',').filter(|s| !s.trim().is_empty()) {
        let (_n, t) = p
            .split_once(':')
            .ok_or_else(|| perr("param missing type"))?;
        params.push(Type::from_name(t.trim()).ok_or_else(|| perr("bad param type"))?);
    }
    let tail = rest[close + 1..].trim();
    let tail = tail
        .strip_prefix("->")
        .ok_or_else(|| perr("missing return type"))?
        .trim();
    let tail = tail
        .strip_suffix('{')
        .ok_or_else(|| perr("missing `{`"))?
        .trim();
    let (ret_txt, purity) = if let Some(t) = tail.strip_suffix("pure") {
        (t.trim(), Purity::Pure)
    } else if let Some(t) = tail.strip_suffix("readonly") {
        (t.trim(), Purity::ReadOnly)
    } else {
        (tail, Purity::Impure)
    };
    let ret = if ret_txt == "void" {
        None
    } else {
        Some(Type::from_name(ret_txt).ok_or_else(|| perr("bad return type"))?)
    };
    Ok(Header {
        name,
        params,
        ret,
        purity,
    })
}

/// Collected instruction line, pre-resolution.
struct PendingInst {
    line: usize,
    block: BlockId,
    result: Option<(String, Type)>,
    text: String,
}

fn parse_body(
    m: &mut Module,
    fid: FuncId,
    lines: &[(usize, String)],
    mut idx: usize,
) -> PResult<usize> {
    let mut names: HashMap<String, ValueId> = HashMap::new();
    let nparams = m.function(fid).params.len();
    for i in 0..nparams {
        names.insert(format!("%{i}"), ValueId(i as u32));
    }

    let mut pending: Vec<PendingInst> = Vec::new();
    let mut blocks_seen = 0usize;
    let mut cur_block: Option<BlockId> = None;

    // Collect lines until `}`.
    loop {
        let Some((ln, l)) = lines.get(idx) else {
            return Err(ParseError {
                line: 0,
                message: "unterminated function".into(),
            });
        };
        let ln = *ln;
        idx += 1;
        if l == "}" {
            break;
        }
        if let Some(label) = l.strip_suffix(':') {
            if !label.starts_with("bb") {
                return Err(ParseError {
                    line: ln,
                    message: format!("bad block label `{label}`"),
                });
            }
            let b = if blocks_seen == 0 {
                m.function(fid).entry()
            } else {
                m.function_mut(fid).add_block(label)
            };
            blocks_seen += 1;
            cur_block = Some(b);
            continue;
        }
        // `%n = const 42: i64` lines.
        if let Some((lhs, rhs)) = l.split_once('=') {
            let rhs = rhs.trim();
            if let Some(cexpr) = rhs.strip_prefix("const ") {
                let (v, t) = cexpr.split_once(':').ok_or_else(|| ParseError {
                    line: ln,
                    message: "const missing type".into(),
                })?;
                let ty = Type::from_name(t.trim()).ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad const type".into(),
                })?;
                let c = if ty == Type::F64 {
                    Constant::Float(v.trim().parse().map_err(|_| ParseError {
                        line: ln,
                        message: "bad float constant".into(),
                    })?)
                } else {
                    Constant::Int(
                        v.trim().parse().map_err(|_| ParseError {
                            line: ln,
                            message: "bad int constant".into(),
                        })?,
                        ty,
                    )
                };
                let id = m.function_mut(fid).add_const(c);
                names.insert(lhs.trim().split(':').next().unwrap().trim().to_string(), id);
                continue;
            }
        }
        let block = cur_block.ok_or_else(|| ParseError {
            line: ln,
            message: "instruction before first block label".into(),
        })?;
        // `%n: ty = <inst>` or bare `<inst>`.
        let (result, text) = match l.split_once('=') {
            Some((lhs, rhs)) if lhs.trim_start().starts_with('%') => {
                let (nm, ty) = lhs.split_once(':').ok_or_else(|| ParseError {
                    line: ln,
                    message: "result missing type annotation".into(),
                })?;
                let ty = Type::from_name(ty.trim()).ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad result type".into(),
                })?;
                (Some((nm.trim().to_string(), ty)), rhs.trim().to_string())
            }
            _ => (None, l.clone()),
        };
        // Pre-create the value slot so forward references (phis) resolve.
        let id = m.function_mut(fid).create_inst(
            InstKind::Ret { value: None }, // placeholder, patched below
            result.as_ref().map(|(_, t)| *t),
            block,
        );
        m.function_mut(fid).push_inst(id);
        if let Some((nm, _)) = &result {
            names.insert(nm.clone(), id);
        }
        pending.push(PendingInst {
            line: ln,
            block,
            result,
            text,
        });
    }

    // Resolve operands and patch instruction kinds.
    let mut pi = 0usize;
    let block_ids: Vec<BlockId> = m.function(fid).block_ids().collect();
    let lookup_block = |s: &str, line: usize| -> PResult<BlockId> {
        let n: u32 = s
            .strip_prefix("bb")
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ParseError {
                line,
                message: format!("bad block ref `{s}`"),
            })?;
        block_ids
            .get(n as usize)
            .copied()
            .ok_or_else(|| ParseError {
                line,
                message: format!("unknown block `{s}`"),
            })
    };
    // Identify the value ids assigned to pending instructions, in order.
    let inst_ids: Vec<ValueId> = {
        let f = m.function(fid);
        f.all_insts().collect()
    };
    let body_blocks: Vec<BlockId> = m.function(fid).block_ids().collect();
    for b in body_blocks {
        let insts = m.function(fid).block(b).insts.clone();
        for v in insts {
            let p = &pending[pi];
            debug_assert_eq!(p.block, b);
            let kind = parse_inst_text(m, &p.text, p.line, &names, &lookup_block)?;
            let _ = &p.result;
            m.function_mut(fid).inst_mut(v).expect("inst").kind = kind;
            pi += 1;
        }
    }
    debug_assert_eq!(pi, pending.len());
    let _ = inst_ids;
    Ok(idx)
}

fn resolve(names: &HashMap<String, ValueId>, s: &str, line: usize) -> PResult<ValueId> {
    names.get(s.trim()).copied().ok_or_else(|| ParseError {
        line,
        message: format!("unknown value `{}`", s.trim()),
    })
}

fn parse_inst_text(
    m: &Module,
    text: &str,
    line: usize,
    names: &HashMap<String, ValueId>,
    lookup_block: &dyn Fn(&str, usize) -> PResult<BlockId>,
) -> PResult<InstKind> {
    let perr = |msg: String| ParseError { line, message: msg };
    let (op, rest) = match text.split_once(' ') {
        Some((a, b)) => (a, b.trim()),
        None => (text, ""),
    };
    let two_ops = |rest: &str| -> PResult<(ValueId, ValueId)> {
        let (a, b) = rest
            .split_once(',')
            .ok_or_else(|| perr(format!("expected two operands in `{text}`")))?;
        Ok((resolve(names, a, line)?, resolve(names, b, line)?))
    };

    if let Some(binop) = BinOp::from_mnemonic(op) {
        let (a, b) = two_ops(rest)?;
        return Ok(InstKind::Binary {
            op: binop,
            lhs: a,
            rhs: b,
        });
    }
    if let Some(castop) = CastOp::from_mnemonic(op) {
        let (v, t) = rest
            .split_once(" to ")
            .ok_or_else(|| perr("cast missing `to`".into()))?;
        return Ok(InstKind::Cast {
            op: castop,
            val: resolve(names, v, line)?,
            to: Type::from_name(t.trim()).ok_or_else(|| perr("bad cast type".into()))?,
        });
    }
    match op {
        "icmp" => {
            let (pred, ops) = rest
                .split_once(' ')
                .ok_or_else(|| perr("icmp missing predicate".into()))?;
            let pred = Pred::from_mnemonic(pred).ok_or_else(|| perr("bad predicate".into()))?;
            let (a, b) = two_ops(ops)?;
            Ok(InstKind::ICmp {
                pred,
                lhs: a,
                rhs: b,
            })
        }
        "select" => {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() != 3 {
                return Err(perr("select needs three operands".into()));
            }
            Ok(InstKind::Select {
                cond: resolve(names, parts[0], line)?,
                then_val: resolve(names, parts[1], line)?,
                else_val: resolve(names, parts[2], line)?,
            })
        }
        "alloc" => {
            let (c, sz) = rest
                .split_once(" x ")
                .ok_or_else(|| perr("alloc missing `x`".into()))?;
            Ok(InstKind::Alloc {
                count: resolve(names, c, line)?,
                elem_size: sz
                    .trim()
                    .parse()
                    .map_err(|_| perr("bad elem size".into()))?,
            })
        }
        "gep" => {
            let (base, rest2) = rest
                .split_once(',')
                .ok_or_else(|| perr("gep missing index".into()))?;
            let (idx_part, off) = match rest2.split_once('+') {
                Some((a, o)) => (
                    a,
                    o.trim()
                        .parse::<u64>()
                        .map_err(|_| perr("bad gep offset".into()))?,
                ),
                None => (rest2, 0),
            };
            let (i, sz) = idx_part
                .split_once(" x ")
                .ok_or_else(|| perr("gep missing `x`".into()))?;
            Ok(InstKind::Gep {
                base: resolve(names, base, line)?,
                index: resolve(names, i, line)?,
                elem_size: sz
                    .trim()
                    .parse()
                    .map_err(|_| perr("bad elem size".into()))?,
                offset: off,
            })
        }
        "load" => {
            let (t, a) = rest
                .split_once(',')
                .ok_or_else(|| perr("load missing address".into()))?;
            Ok(InstKind::Load {
                ty: Type::from_name(t.trim()).ok_or_else(|| perr("bad load type".into()))?,
                addr: resolve(names, a, line)?,
            })
        }
        "store" => {
            let (v, a) = two_ops(rest)?;
            Ok(InstKind::Store { addr: a, value: v })
        }
        "prefetch" => Ok(InstKind::Prefetch {
            addr: resolve(names, rest, line)?,
        }),
        "phi" => {
            let mut incomings = Vec::new();
            for part in rest.split("],") {
                let part = part.trim().trim_start_matches('[').trim_end_matches(']');
                let (b, v) = part
                    .split_once(':')
                    .ok_or_else(|| perr("phi incoming missing `:`".into()))?;
                incomings.push((lookup_block(b.trim(), line)?, resolve(names, v, line)?));
            }
            Ok(InstKind::Phi { incomings })
        }
        "call" => {
            let rest = rest
                .strip_prefix('@')
                .ok_or_else(|| perr("call missing `@`".into()))?;
            let open = rest
                .find('(')
                .ok_or_else(|| perr("call missing `(`".into()))?;
            let fname = &rest[..open];
            let args_text = rest[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| perr("call missing `)`".into()))?;
            let callee = m
                .find_function(fname)
                .ok_or_else(|| perr(format!("unknown function `{fname}`")))?;
            let mut args = Vec::new();
            for a in args_text.split(',').filter(|s| !s.trim().is_empty()) {
                args.push(resolve(names, a, line)?);
            }
            Ok(InstKind::Call { callee, args })
        }
        "br" => {
            if rest.contains(',') {
                let parts: Vec<&str> = rest.split(',').collect();
                if parts.len() != 3 {
                    return Err(perr("conditional br needs cond and two targets".into()));
                }
                Ok(InstKind::CondBr {
                    cond: resolve(names, parts[0], line)?,
                    then_bb: lookup_block(parts[1].trim(), line)?,
                    else_bb: lookup_block(parts[2].trim(), line)?,
                })
            } else {
                Ok(InstKind::Br {
                    target: lookup_block(rest.trim(), line)?,
                })
            }
        }
        "ret" => {
            if rest.is_empty() {
                Ok(InstKind::Ret { value: None })
            } else {
                Ok(InstKind::Ret {
                    value: Some(resolve(names, rest, line)?),
                })
            }
        }
        other => Err(perr(format!("unknown instruction `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;
    use crate::verifier::verify_module;

    const LOOP: &str = r"module t

func @k(%0: ptr, %1: ptr, %2: i64) -> i64 {
  %3 = const 0: i64
  %4 = const 1: i64
bb0:
  br bb1
bb1:
  %5: i64 = phi [bb0: %3], [bb2: %11]
  %6: i64 = phi [bb0: %3], [bb2: %10]
  %7: i1 = icmp slt %5, %2
  br %7, bb2, bb3
bb2:
  %8: ptr = gep %1, %5 x 8
  %9: i64 = load i64, %8
  %sum_addr: ptr = gep %0, %9 x 8
  %sv: i64 = load i64, %sum_addr
  %10: i64 = add %6, %sv
  %11: i64 = add %5, %4
  br bb1
bb3:
  ret %6
}
";

    #[test]
    fn parses_and_verifies() {
        let m = parse_module(LOOP).expect("parse");
        verify_module(&m).expect("verify");
        assert_eq!(m.num_functions(), 1);
        let f = m.function(FuncId(0));
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.num_blocks(), 4);
    }

    #[test]
    fn print_parse_print_fixpoint() {
        let m = parse_module(LOOP).expect("parse");
        let p1 = print_module(&m);
        let m2 = parse_module(&p1).expect("reparse");
        let p2 = print_module(&m2);
        assert_eq!(p1, p2);
        verify_module(&m2).unwrap();
    }

    #[test]
    fn reports_unknown_value() {
        let bad = "module t\n\nfunc @f() -> void {\nbb0:\n  prefetch %99\n}\n";
        let err = parse_module(bad).unwrap_err();
        assert!(err.message.contains("unknown value"), "{err}");
    }

    #[test]
    fn reports_unknown_instruction() {
        let bad = "module t\n\nfunc @f() -> void {\nbb0:\n  frobnicate %0\n}\n";
        let err = parse_module(bad).unwrap_err();
        assert!(err.message.contains("unknown instruction"), "{err}");
    }

    #[test]
    fn parses_purity_annotations() {
        let src = "module t\n\nfunc @h(%0: i64) -> i64 pure {\nbb0:\n  %1: i64 = mul %0, %0\n  ret %1\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.function(FuncId(0)).purity, Purity::Pure);
        verify_module(&m).unwrap();
    }

    #[test]
    fn parses_calls_across_functions() {
        let src = "module t\n\nfunc @h(%0: i64) -> i64 pure {\nbb0:\n  %1: i64 = mul %0, %0\n  ret %1\n}\n\nfunc @g(%0: i64) -> i64 {\nbb0:\n  %1: i64 = call @h(%0)\n  ret %1\n}\n";
        let m = parse_module(src).unwrap();
        verify_module(&m).unwrap();
        let p1 = print_module(&m);
        let m2 = parse_module(&p1).unwrap();
        assert_eq!(p1, print_module(&m2));
    }
}
