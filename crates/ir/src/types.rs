//! Scalar types for IR values.

use std::fmt;

/// The type of an IR value.
///
/// The IR is scalar-only: aggregates live in memory and are accessed through
/// [`gep`](crate::inst::InstKind::Gep)/[`load`](crate::inst::InstKind::Load)
/// with explicit element sizes, exactly the view the prefetching pass needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// Single-bit boolean (comparison results, branch conditions).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 64-bit IEEE-754 float.
    F64,
    /// Untyped pointer into the flat simulated address space.
    Ptr,
}

impl Type {
    /// Size of a value of this type in bytes when stored to memory.
    ///
    /// `I1` occupies a full byte in memory, as on every real ISA.
    #[must_use]
    pub fn size_bytes(self) -> u64 {
        match self {
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
        }
    }

    /// Whether this is an integer type (including `I1` and `Ptr`).
    #[must_use]
    pub fn is_int(self) -> bool {
        !matches!(self, Type::F64)
    }

    /// Whether this type may hold a memory address.
    #[must_use]
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// Bit width of integer types; 64 for `Ptr`, panics for `F64`.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Type::I1 => 1,
            Type::I8 => 8,
            Type::I16 => 16,
            Type::I32 => 32,
            Type::I64 | Type::Ptr => 64,
            Type::F64 => panic!("bits() on F64"),
        }
    }

    /// Parse a type name as produced by [`fmt::Display`].
    #[must_use]
    pub fn from_name(s: &str) -> Option<Type> {
        Some(match s {
            "i1" => Type::I1,
            "i8" => Type::I8,
            "i16" => Type::I16,
            "i32" => Type::I32,
            "i64" => Type::I64,
            "f64" => Type::F64,
            "ptr" => Type::Ptr,
            _ => return None,
        })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I1 => "i1",
            Type::I8 => "i8",
            Type::I16 => "i16",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_hardware_expectations() {
        assert_eq!(Type::I8.size_bytes(), 1);
        assert_eq!(Type::I16.size_bytes(), 2);
        assert_eq!(Type::I32.size_bytes(), 4);
        assert_eq!(Type::I64.size_bytes(), 8);
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::Ptr.size_bytes(), 8);
    }

    #[test]
    fn display_parse_roundtrip() {
        for t in [
            Type::I1,
            Type::I8,
            Type::I16,
            Type::I32,
            Type::I64,
            Type::F64,
            Type::Ptr,
        ] {
            assert_eq!(Type::from_name(&t.to_string()), Some(t));
        }
        assert_eq!(Type::from_name("i128"), None);
    }

    #[test]
    fn int_and_ptr_predicates() {
        assert!(Type::I64.is_int());
        assert!(Type::Ptr.is_int());
        assert!(!Type::F64.is_int());
        assert!(Type::Ptr.is_ptr());
        assert!(!Type::I64.is_ptr());
    }
}
