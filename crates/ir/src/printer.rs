//! Canonical textual form of modules and functions.
//!
//! The printer renumbers values canonically (arguments, then constants in
//! id order, then instructions in block order), so `print ∘ parse ∘ print`
//! is the identity on printed text. Detached values (created but never
//! placed in a block) are not printed.

use crate::function::{Function, Purity};
use crate::inst::InstKind;
use crate::module::Module;
use crate::value::{Constant, ValueId};
use std::fmt::Write as _;

/// Print a whole module.
#[must_use]
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", m.name);
    for f in m.func_ids() {
        out.push('\n');
        out.push_str(&print_function(m, m.function(f)));
    }
    out
}

/// Print a single function in canonical form.
#[must_use]
pub fn print_function(m: &Module, f: &Function) -> String {
    print_function_impl(m, f, None)
}

/// Like [`print_function`], additionally reporting which placed
/// instruction each printed line renders (`None` for the header,
/// constants, block labels, and the closing brace).
///
/// The [`ValueId`]s are the function's own ids — the same ids execution
/// images and simulators encode into event PCs (`pc = fid << 32 | id`) —
/// so a per-PC profile can be joined line-by-line against the printed
/// text. This is the `perf annotate` join key.
#[must_use]
pub fn print_function_lines(m: &Module, f: &Function) -> (String, Vec<Option<ValueId>>) {
    let mut lines = Vec::new();
    let text = print_function_impl(m, f, Some(&mut lines));
    (text, lines)
}

fn print_function_impl(
    m: &Module,
    f: &Function,
    mut lines: Option<&mut Vec<Option<ValueId>>>,
) -> String {
    let mut mark = |v: Option<ValueId>| {
        if let Some(lines) = lines.as_deref_mut() {
            lines.push(v);
        }
    };
    let mut out = String::new();
    // Canonical numbering: args, then referenced constants, then placed insts.
    let mut display = vec![u32::MAX; f.num_values()];
    let mut next = 0u32;
    for slot in display.iter_mut().take(f.params.len()) {
        *slot = next;
        next += 1;
    }
    let mut const_ids = Vec::new();
    for idx in 0..f.num_values() {
        if f.value(ValueId(idx as u32)).is_const() {
            const_ids.push(ValueId(idx as u32));
        }
    }
    for &c in &const_ids {
        display[c.index()] = next;
        next += 1;
    }
    for v in f.all_insts() {
        display[v.index()] = next;
        next += 1;
    }
    let dv = |v: ValueId| format!("%{}", display[v.index()]);

    let _ = write!(out, "func @{}(", f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "%{i}: {p}");
    }
    let _ = write!(out, ")");
    match f.ret {
        Some(t) => {
            let _ = write!(out, " -> {t}");
        }
        None => {
            let _ = write!(out, " -> void");
        }
    }
    match f.purity {
        Purity::Pure => out.push_str(" pure"),
        Purity::ReadOnly => out.push_str(" readonly"),
        Purity::Impure => {}
    }
    out.push_str(" {\n");
    mark(None);

    for c in &const_ids {
        match f.constant(*c) {
            Some(Constant::Int(v, t)) => {
                let _ = writeln!(out, "  {} = const {v}: {t}", dv(*c));
            }
            Some(Constant::Float(v)) => {
                let _ = writeln!(out, "  {} = const {v:?}: f64", dv(*c));
            }
            None => unreachable!("const_ids holds constants only"),
        }
        mark(None);
    }

    for b in f.block_ids() {
        let _ = writeln!(out, "{b}:");
        mark(None);
        for &v in &f.block(b).insts {
            let inst = f.inst(v).expect("placed value is an instruction");
            out.push_str("  ");
            if let Some(ty) = f.value(v).ty {
                let _ = write!(out, "{}: {ty} = ", dv(v));
            }
            // Render the instruction with display numbering.
            let text = render_kind(m, &inst.kind, &dv);
            out.push_str(&text);
            if let Some(name) = &f.value(v).name {
                let _ = write!(out, " ; {name}");
            }
            out.push('\n');
            mark(Some(v));
        }
    }
    out.push_str("}\n");
    mark(None);
    out
}

fn render_kind(m: &Module, kind: &InstKind, dv: &dyn Fn(ValueId) -> String) -> String {
    match kind {
        InstKind::Binary { op, lhs, rhs } => {
            format!("{} {}, {}", op.mnemonic(), dv(*lhs), dv(*rhs))
        }
        InstKind::ICmp { pred, lhs, rhs } => {
            format!("icmp {} {}, {}", pred.mnemonic(), dv(*lhs), dv(*rhs))
        }
        InstKind::Select {
            cond,
            then_val,
            else_val,
        } => format!("select {}, {}, {}", dv(*cond), dv(*then_val), dv(*else_val)),
        InstKind::Cast { op, val, to } => format!("{} {} to {to}", op.mnemonic(), dv(*val)),
        InstKind::Alloc { count, elem_size } => format!("alloc {} x {elem_size}", dv(*count)),
        InstKind::Gep {
            base,
            index,
            elem_size,
            offset,
        } => {
            if *offset == 0 {
                format!("gep {}, {} x {elem_size}", dv(*base), dv(*index))
            } else {
                format!("gep {}, {} x {elem_size} + {offset}", dv(*base), dv(*index))
            }
        }
        InstKind::Load { addr, ty } => format!("load {ty}, {}", dv(*addr)),
        InstKind::Store { addr, value } => format!("store {}, {}", dv(*value), dv(*addr)),
        InstKind::Prefetch { addr } => format!("prefetch {}", dv(*addr)),
        InstKind::Phi { incomings } => {
            let mut s = String::from("phi ");
            for (i, (b, v)) in incomings.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{b}: {}]", dv(*v));
            }
            s
        }
        InstKind::Call { callee, args } => {
            let mut s = format!("call @{}(", m.function(*callee).name);
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&dv(*a));
            }
            s.push(')');
            s
        }
        InstKind::Br { target } => format!("br {target}"),
        InstKind::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!("br {}, {then_bb}, {else_bb}", dv(*cond)),
        InstKind::Ret { value } => match value {
            Some(v) => format!("ret {}", dv(*v)),
            None => "ret".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Pred;
    use crate::types::Type;

    #[test]
    fn prints_loop_shape() {
        let mut m = Module::new("p");
        let fid = m.declare_function("k", &[Type::Ptr, Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(1));
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let addr = b.gep(b.arg(0), i, 4);
            let v = b.load(Type::I32, addr);
            b.store(v, addr);
            let one = b.const_i64(1);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to(exit);
            b.ret(None);
        }
        let text = print_module(&m);
        assert!(
            text.contains("func @k(%0: ptr, %1: i64) -> void {"),
            "{text}"
        );
        assert!(text.contains("phi [bb0:"), "{text}");
        assert!(text.contains("load i32"), "{text}");
        assert!(text.contains("icmp slt"), "{text}");
    }

    #[test]
    fn line_map_marks_exactly_the_placed_instructions() {
        let mut m = Module::new("p");
        let fid = m.declare_function("k", &[Type::Ptr, Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let i = b.const_i64(3);
            let addr = b.gep(b.arg(0), i, 4);
            let v = b.load(Type::I32, addr);
            b.store(v, addr);
            b.ret(None);
        }
        let f = m.function(fid);
        let (text, lines) = print_function_lines(&m, f);
        let printed: Vec<&str> = text.lines().collect();
        assert_eq!(printed.len(), lines.len(), "one map entry per line");
        // Plain printing is unchanged by the instrumented path.
        assert_eq!(text, print_function(&m, f));
        // Each marked line is an instruction; the ids are the
        // function's own (pc-encodable) ids, in block order.
        let marked: Vec<ValueId> = lines.iter().flatten().copied().collect();
        assert_eq!(marked.len(), f.all_insts().count());
        for (line, v) in lines.iter().enumerate() {
            let Some(v) = v else { continue };
            assert!(f.inst(*v).is_some(), "marked line holds a placed inst");
            // The rendered line mentions the display number the printer
            // assigned — sanity that text and map stay in step.
            assert!(
                printed[line].starts_with("  "),
                "inst lines are indented: {:?}",
                printed[line]
            );
        }
    }
}
