//! Values: the SSA names produced by arguments, constants and instructions.

use crate::inst::Inst;
use crate::types::Type;
use std::fmt;

/// Index of a value within its [`Function`](crate::function::Function)'s
/// value arena.
///
/// Everything that can be used as an operand — arguments, constants and
/// instruction results — is a value, LLVM-style. `ValueId`s are only
/// meaningful within the function that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The arena slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constant {
    /// Integer constant of the given type (stored sign-extended).
    Int(i64, Type),
    /// Floating-point constant.
    Float(f64),
}

impl Constant {
    /// The type of the constant.
    #[must_use]
    pub fn ty(&self) -> Type {
        match *self {
            Constant::Int(_, t) => t,
            Constant::Float(_) => Type::F64,
        }
    }

    /// The integer payload, if this is an integer constant.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match *self {
            Constant::Int(v, _) => Some(v),
            Constant::Float(_) => None,
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(v, t) => write!(f, "{v}: {t}"),
            Constant::Float(v) => write!(f, "{v}: f64"),
        }
    }
}

/// What a value *is*: argument, constant, or instruction result.
#[derive(Debug, Clone)]
pub enum ValueKind {
    /// The `index`-th formal parameter of the function.
    Arg {
        /// Zero-based parameter position.
        index: u32,
    },
    /// A literal constant.
    Const(Constant),
    /// The result of (or, for `void` instructions such as stores and
    /// branches, the identity of) an instruction.
    Inst(Inst),
}

/// A value table entry: kind plus result type.
///
/// Instructions that produce no result (stores, branches, `ret`,
/// `prefetch`) still occupy a value slot so they have a stable identity for
/// block instruction lists, analyses and the interpreter; their type is
/// reported as `None`.
#[derive(Debug, Clone)]
pub struct ValueData {
    /// Result type; `None` for void instructions.
    pub ty: Option<Type>,
    /// What produces the value.
    pub kind: ValueKind,
    /// Optional debug name, used by the printer (`%name` instead of `%7`).
    pub name: Option<String>,
}

impl ValueData {
    /// Convenience accessor for the instruction payload.
    #[must_use]
    pub fn as_inst(&self) -> Option<&Inst> {
        match &self.kind {
            ValueKind::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Mutable instruction payload accessor.
    pub fn as_inst_mut(&mut self) -> Option<&mut Inst> {
        match &mut self.kind {
            ValueKind::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Whether this value is a constant.
    #[must_use]
    pub fn is_const(&self) -> bool {
        matches!(self.kind, ValueKind::Const(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_types() {
        assert_eq!(Constant::Int(3, Type::I32).ty(), Type::I32);
        assert_eq!(Constant::Float(1.5).ty(), Type::F64);
        assert_eq!(Constant::Int(-1, Type::I64).as_int(), Some(-1));
        assert_eq!(Constant::Float(0.0).as_int(), None);
    }

    #[test]
    fn value_id_display() {
        assert_eq!(ValueId(7).to_string(), "%7");
        assert_eq!(ValueId(7).index(), 7);
    }
}
