//! Structural and SSA verification.
//!
//! The verifier enforces the invariants every analysis and the prefetch
//! pass rely on:
//!
//! * every reachable block ends in exactly one terminator,
//! * phis appear only at block starts and their incoming edges match the
//!   block's actual predecessors,
//! * operands are type-correct,
//! * every use is dominated by its definition (the SSA property), and
//! * declared function purity is consistent with the body.

use crate::block::BlockId;
use crate::function::{FuncId, Function, Purity};
use crate::inst::InstKind;
use crate::module::Module;
use crate::types::Type;
use crate::value::{ValueId, ValueKind};
use std::fmt;

/// A verification failure, with enough context to locate the fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the error was found.
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in @{}: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verify every function in the module.
///
/// # Errors
/// Returns the first violation found ([`verify_module_all`] collects
/// them all).
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in m.func_ids() {
        verify_function(m, f)?;
    }
    Ok(())
}

/// Verify every function in the module, collecting **every** violation
/// instead of stopping at the first — what the verify-between-passes
/// debug mode reports, so one broken pass shows all of its damage at
/// once. Empty means the module is valid.
#[must_use]
pub fn verify_module_all(m: &Module) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    for f in m.func_ids() {
        errs.extend(verify_function_all(m, f));
    }
    errs
}

/// Verify a single function.
///
/// # Errors
/// Returns the first violation found ([`verify_function_all`] collects
/// them all).
pub fn verify_function(m: &Module, fid: FuncId) -> Result<(), VerifyError> {
    match verify_function_all(m, fid).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Verify a single function, collecting every violation.
///
/// Checks run in dependency order: structural soundness first (blocks
/// non-empty, listed values are instructions, operand/successor
/// indices in range, terminator/phi placement). If any structural
/// check fails, the deeper phases — which index by those values and
/// would fault on a malformed skeleton — are skipped for this
/// function, and only the structural errors are reported. On a
/// structurally sound function, every phi-edge, type, SSA-dominance,
/// and purity violation is collected (type and dominance checks report
/// at instruction granularity).
#[must_use]
pub fn verify_function_all(m: &Module, fid: FuncId) -> Vec<VerifyError> {
    let f = m.function(fid);
    let mut errs: Vec<VerifyError> = Vec::new();
    macro_rules! fail {
        ($($t:tt)*) => {
            errs.push(VerifyError {
                func: f.name.clone(),
                message: format!($($t)*),
            })
        };
    }

    // --- structural checks -------------------------------------------------
    for b in f.block_ids() {
        let insts = &f.block(b).insts;
        if insts.is_empty() {
            fail!("{b} is empty");
            continue;
        }
        let mut seen_non_phi = false;
        for (pos, &v) in insts.iter().enumerate() {
            let Some(inst) = f.inst(v) else {
                fail!("{b} lists non-instruction value {v}");
                continue;
            };
            if inst.block != b {
                fail!("{v} placed in {b} but records {}", inst.block);
            }
            let is_last = pos + 1 == insts.len();
            if inst.is_terminator() != is_last {
                fail!(
                    "{v} in {b}: terminator placement (pos {pos} of {})",
                    insts.len()
                );
            }
            match inst.kind {
                InstKind::Phi { .. } => {
                    if seen_non_phi {
                        fail!("{v}: phi after non-phi in {b}");
                    }
                }
                _ => seen_non_phi = true,
            }
            // Operand and successor indices must be in range.
            for op in inst.operands() {
                if op.index() >= f.num_values() {
                    fail!("{v}: operand {op} out of range");
                }
            }
            for s in inst.successors() {
                if s.index() >= f.num_blocks() {
                    fail!("{v}: successor {s} out of range");
                }
            }
        }
    }
    if !errs.is_empty() {
        // The remaining phases index values/blocks the structural pass
        // just proved unsound; report the structural damage alone.
        return errs;
    }

    // --- phi incoming edges match predecessors -----------------------------
    let preds = f.predecessors();
    for b in f.block_ids() {
        for &v in &f.block(b).insts {
            if let Some(InstKind::Phi { incomings }) = f.inst(v).map(|i| &i.kind) {
                let mut incoming_blocks: Vec<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                incoming_blocks.sort();
                incoming_blocks.dedup();
                if incoming_blocks.len() != incomings.len() {
                    fail!("{v}: duplicate phi incoming blocks");
                }
                let mut actual = preds[b.index()].clone();
                actual.sort();
                actual.dedup();
                if incoming_blocks != actual {
                    fail!("{v}: phi incomings {incoming_blocks:?} != predecessors {actual:?}");
                }
            }
        }
    }

    // --- type checks --------------------------------------------------------
    for v in f.all_insts() {
        if let Err(msg) = check_inst_types(m, f, v) {
            fail!("{msg}");
        }
    }

    // --- SSA dominance -------------------------------------------------------
    let idom = compute_idom(f);
    let dominates = |a: BlockId, mut b: BlockId| -> bool {
        loop {
            if a == b {
                return true;
            }
            match idom[b.index()] {
                Some(d) if d != b => b = d,
                _ => return false,
            }
        }
    };
    for b in f.block_ids() {
        if idom[b.index()].is_none() && b != f.entry() {
            continue; // unreachable block: skip dominance checks
        }
        let insts = &f.block(b).insts;
        for (pos, &v) in insts.iter().enumerate() {
            let inst = f.inst(v).expect("checked");
            if let InstKind::Phi { incomings } = &inst.kind {
                // Each incoming value must dominate the end of its edge block.
                for &(pb, pv) in incomings {
                    if let ValueKind::Inst(def) = &f.value(pv).kind {
                        if !dominates(def.block, pb) {
                            fail!("{v}: phi incoming {pv} does not dominate {pb}");
                        }
                    }
                }
                continue;
            }
            for op in inst.operands() {
                if let ValueKind::Inst(def) = &f.value(op).kind {
                    if def.block == b {
                        let def_pos = f.block(b).position_of(op);
                        match def_pos {
                            Some(dp) if dp < pos => {}
                            _ => {
                                fail!("{v}: use of {op} before definition in {b}");
                            }
                        }
                    } else if !dominates(def.block, b) {
                        fail!("{v}: use of {op} not dominated by its definition");
                    }
                }
            }
        }
    }

    // --- purity --------------------------------------------------------------
    if f.purity != Purity::Impure {
        for v in f.all_insts() {
            match &f.inst(v).expect("checked").kind {
                InstKind::Store { .. } | InstKind::Alloc { .. } => {
                    fail!("{v}: store/alloc in non-impure function");
                }
                InstKind::Load { .. } if f.purity == Purity::Pure => {
                    fail!("{v}: load in pure function");
                }
                InstKind::Call { callee, .. } => {
                    let cp = m.function(*callee).purity;
                    let ok = match f.purity {
                        Purity::Pure => cp == Purity::Pure,
                        Purity::ReadOnly => cp != Purity::Impure,
                        Purity::Impure => true,
                    };
                    if !ok {
                        fail!("{v}: call weakens declared purity");
                    }
                }
                _ => {}
            }
        }
    }

    errs
}

/// Type-check one instruction, reporting its first violation (the
/// collecting verifier runs this per instruction, so a function's type
/// errors surface at instruction granularity).
fn check_inst_types(m: &Module, f: &Function, v: ValueId) -> Result<(), String> {
    let inst = f.inst(v).expect("checked above");
    let ty_of = |val: ValueId| f.value(val).ty;
    let fail = |msg: String| Err(msg);
    match &inst.kind {
        InstKind::Binary { op, lhs, rhs } => {
            let (lt, rt) = (ty_of(*lhs), ty_of(*rhs));
            if lt.is_none() || lt != rt {
                return fail(format!("{v}: binary operand types {lt:?} vs {rt:?}"));
            }
            let is_f = lt == Some(Type::F64);
            if op.is_float() != is_f {
                return fail(format!("{v}: {} on {lt:?}", op.mnemonic()));
            }
        }
        InstKind::ICmp { lhs, rhs, .. } => {
            let (lt, rt) = (ty_of(*lhs), ty_of(*rhs));
            if lt != rt || lt.is_none_or(|t| !t.is_int()) {
                return fail(format!("{v}: icmp operand types {lt:?} vs {rt:?}"));
            }
        }
        InstKind::Select {
            cond,
            then_val,
            else_val,
        } => {
            if ty_of(*cond) != Some(Type::I1) {
                return fail(format!("{v}: select condition must be i1"));
            }
            if ty_of(*then_val) != ty_of(*else_val) {
                return fail(format!("{v}: select arm types differ"));
            }
        }
        InstKind::Cast { op, val, to } => {
            use crate::inst::CastOp;
            let from = ty_of(*val);
            let Some(from) = from else {
                return fail(format!("{v}: cast of void value"));
            };
            let ok = match op {
                CastOp::Trunc => from.is_int() && to.is_int() && from.bits() > to.bits(),
                CastOp::Zext | CastOp::Sext => {
                    from.is_int() && to.is_int() && from.bits() < to.bits()
                }
                CastOp::IntToPtr => from == Type::I64 && *to == Type::Ptr,
                CastOp::PtrToInt => from == Type::Ptr && *to == Type::I64,
            };
            if !ok {
                return fail(format!("{v}: invalid cast {from} to {to}"));
            }
        }
        InstKind::Alloc { count, elem_size } => {
            if ty_of(*count).is_none_or(|t| !t.is_int()) {
                return fail(format!("{v}: alloc count must be integer"));
            }
            if *elem_size == 0 {
                return fail(format!("{v}: alloc with zero element size"));
            }
        }
        InstKind::Gep {
            base,
            index,
            elem_size,
            ..
        } => {
            if ty_of(*base) != Some(Type::Ptr) {
                return fail(format!("{v}: gep base must be ptr"));
            }
            if ty_of(*index).is_none_or(|t| !t.is_int()) {
                return fail(format!("{v}: gep index must be integer"));
            }
            if *elem_size == 0 {
                return fail(format!("{v}: gep with zero element size"));
            }
        }
        InstKind::Load { addr, .. }
        | InstKind::Prefetch { addr }
        | InstKind::Store { addr, .. } => {
            if ty_of(*addr) != Some(Type::Ptr) {
                return fail(format!("{v}: memory address must be ptr"));
            }
            if let InstKind::Store { value, .. } = inst.kind {
                if ty_of(value).is_none() {
                    return fail(format!("{v}: store of void value"));
                }
            }
        }
        InstKind::Phi { incomings } => {
            let my_ty = f.value(v).ty;
            for (_, iv) in incomings {
                if ty_of(*iv) != my_ty {
                    return fail(format!("{v}: phi incoming type mismatch"));
                }
            }
        }
        InstKind::Call { callee, args } => {
            if callee.index() >= m.num_functions() {
                return fail(format!("{v}: call target out of range"));
            }
            let target = m.function(*callee);
            if target.params.len() != args.len() {
                return fail(format!(
                    "{v}: call to @{} with {} args, expected {}",
                    target.name,
                    args.len(),
                    target.params.len()
                ));
            }
            for (a, &pt) in args.iter().zip(&target.params) {
                if ty_of(*a) != Some(pt) {
                    return fail(format!("{v}: call argument type mismatch"));
                }
            }
            if f.value(v).ty != target.ret {
                return fail(format!("{v}: call result type mismatch"));
            }
        }
        InstKind::CondBr { cond, .. } => {
            if ty_of(*cond) != Some(Type::I1) {
                return fail(format!("{v}: branch condition must be i1"));
            }
        }
        InstKind::Br { .. } => {}
        InstKind::Ret { value } => {
            let got = value.and_then(ty_of);
            if got != f.ret {
                return fail(format!(
                    "{v}: ret type {got:?}, function returns {:?}",
                    f.ret
                ));
            }
        }
    }
    Ok(())
}

/// Immediate dominators via the Cooper–Harvey–Kennedy iterative algorithm.
///
/// Entry's idom is itself; unreachable blocks get `None`. (The analysis
/// crate re-exposes dominators with a richer API; this copy keeps the
/// verifier dependency-free.)
#[must_use]
pub fn compute_idom(f: &Function) -> Vec<Option<BlockId>> {
    let n = f.num_blocks();
    // Reverse postorder.
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    let mut stack = vec![(f.entry(), 0usize)];
    visited[f.entry().index()] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.successors(b);
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    let rpo: Vec<BlockId> = post.into_iter().rev().collect();
    let mut rpo_num = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        rpo_num[b.index()] = i;
    }

    let preds = f.predecessors();
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[f.entry().index()] = Some(f.entry());
    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_num[a.index()] > rpo_num[b.index()] {
                a = idom[a.index()].expect("processed");
            }
            while rpo_num[b.index()] > rpo_num[a.index()] {
                b = idom[b.index()].expect("processed");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.index()] {
                if idom[p.index()].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
            }
            if new_idom.is_some() && idom[b.index()] != new_idom {
                idom[b.index()] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Pred};

    fn module_with(f: impl FnOnce(&mut FunctionBuilder)) -> Module {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64, Type::Ptr], Type::I64);
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        f(&mut b);
        m
    }

    #[test]
    fn accepts_straight_line() {
        let m = module_with(|b| {
            let x = b.arg(0);
            let one = b.const_i64(1);
            let y = b.add(x, one);
            b.ret(Some(y));
        });
        verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_missing_terminator() {
        let m = module_with(|b| {
            let x = b.arg(0);
            let one = b.const_i64(1);
            b.add(x, one);
        });
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("terminator"), "{err}");
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64, Type::I32], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let wide = b.arg(0);
            let narrow = b.arg(1);
            let bad = b.binary(BinOp::Add, wide, narrow);
            b.ret(Some(bad));
        }
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("binary operand types"), "{err}");
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], Type::I64);
        {
            let f = m.function_mut(fid);
            let entry = f.entry();
            let one = f.const_i64(1);
            // Build add(later, 1) then place `later` after it.
            let later = f.create_inst(
                InstKind::Binary {
                    op: BinOp::Add,
                    lhs: f.arg(0),
                    rhs: one,
                },
                Some(Type::I64),
                entry,
            );
            let early = f.create_inst(
                InstKind::Binary {
                    op: BinOp::Add,
                    lhs: later,
                    rhs: one,
                },
                Some(Type::I64),
                entry,
            );
            f.push_inst(early);
            f.push_inst(later);
            let ret = f.create_inst(InstKind::Ret { value: Some(early) }, None, entry);
            f.push_inst(ret);
        }
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("before definition"), "{err}");
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let next = b.create_block("next");
            let bogus = b.create_block("bogus");
            b.br(next);
            b.switch_to(next);
            let zero = b.const_i64(0);
            // Claims an incoming edge from `bogus`, which never branches here.
            let p = b.phi(Type::I64, &[(entry, zero), (bogus, zero)]);
            b.ret(Some(p));
            b.switch_to(bogus);
            b.ret(Some(zero));
        }
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("phi incomings"), "{err}");
    }

    #[test]
    fn rejects_impure_body_in_pure_function() {
        let mut m = Module::new("t");
        let fid = m.declare_function_with_purity(
            "h",
            &[Type::Ptr],
            Type::I64,
            crate::function::Purity::Pure,
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let p = b.arg(0);
            let v = b.load(Type::I64, p);
            b.ret(Some(v));
        }
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("pure"), "{err}");
    }

    #[test]
    fn collects_every_type_violation() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64, Type::I32], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let wide = b.arg(0);
            let narrow = b.arg(1);
            // Two independent type errors in one function.
            let bad1 = b.binary(BinOp::Add, wide, narrow);
            let bad2 = b.binary(BinOp::Mul, narrow, wide);
            let ok = b.binary(BinOp::Add, wide, wide);
            let _ = (bad1, bad2);
            b.ret(Some(ok));
        }
        let errs = verify_module_all(&m);
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs
            .iter()
            .all(|e| e.message.contains("binary operand types")));
        // The first-error wrapper reports exactly the head of the list.
        assert_eq!(verify_module(&m).unwrap_err(), errs[0]);
    }

    #[test]
    fn structural_damage_gates_deeper_checks_without_panicking() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let x = b.arg(0);
            let one = b.const_i64(1);
            let y = b.add(x, one);
            b.ret(Some(y));
            // An empty second block and a dropped terminator: two
            // structural faults at once.
            b.create_block("hole");
        }
        let entry = m.function(fid).entry();
        m.function_mut(fid).block_mut(entry).insts.pop();
        let errs = verify_module_all(&m);
        assert!(errs.len() >= 2, "{errs:?}");
        assert!(errs.iter().any(|e| e.message.contains("is empty")));
        assert!(errs.iter().any(|e| e.message.contains("terminator")));
    }

    #[test]
    fn idom_of_diamond() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let t = b.create_block("t");
            let e = b.create_block("e");
            let join = b.create_block("join");
            let zero = b.const_i64(0);
            let c = b.icmp(Pred::Eq, b.arg(0), zero);
            b.cond_br(c, t, e);
            b.switch_to(t);
            let one = b.const_i64(1);
            b.br(join);
            b.switch_to(e);
            let two = b.const_i64(2);
            b.br(join);
            b.switch_to(join);
            let p = b.phi(Type::I64, &[(t, one), (e, two)]);
            b.ret(Some(p));
            let _ = entry;
        }
        verify_module(&m).unwrap();
        let f = m.function(FuncId(0));
        let idom = compute_idom(f);
        assert_eq!(idom[3], Some(BlockId(0)), "join dominated by entry");
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(0)));
    }
}
