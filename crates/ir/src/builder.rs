//! Ergonomic construction of IR functions.

use crate::block::BlockId;
use crate::function::{FuncId, Function};
use crate::inst::{BinOp, CastOp, InstKind, Pred};
use crate::types::Type;
use crate::value::{Constant, ValueId};

/// A cursor-style builder appending instructions to a current block.
///
/// The builder borrows the [`Function`] mutably; drop it (or let it go out
/// of scope) before running analyses.
pub struct FunctionBuilder<'f> {
    func: &'f mut Function,
    cur: BlockId,
}

impl<'f> FunctionBuilder<'f> {
    /// Start building into `func`, positioned at its entry block.
    pub fn new(func: &'f mut Function) -> Self {
        let cur = func.entry();
        FunctionBuilder { func, cur }
    }

    /// The function being built.
    #[must_use]
    pub fn func(&self) -> &Function {
        self.func
    }

    /// The entry block.
    #[must_use]
    pub fn entry_block(&self) -> BlockId {
        self.func.entry()
    }

    /// The block instructions are currently appended to.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// The `index`-th formal parameter.
    #[must_use]
    pub fn arg(&self, index: usize) -> ValueId {
        self.func.arg(index)
    }

    /// Create a new empty block (does not change the insertion point).
    pub fn create_block(&mut self, name: &str) -> BlockId {
        self.func.add_block(name)
    }

    /// Move the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Intern an `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.func.const_i64(v)
    }

    /// Intern a constant of arbitrary type.
    pub fn constant(&mut self, c: Constant) -> ValueId {
        self.func.add_const(c)
    }

    /// Give a value a debug name for printed output.
    pub fn name(&mut self, v: ValueId, name: &str) -> ValueId {
        self.func.set_name(v, name);
        v
    }

    fn emit(&mut self, kind: InstKind, ty: Option<Type>) -> ValueId {
        let v = self.func.create_inst(kind, ty, self.cur);
        self.func.push_inst(v);
        v
    }

    /// Emit a binary operation; the result type is the lhs type.
    pub fn binary(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.func.value(lhs).ty.expect("binary lhs must be typed");
        self.emit(InstKind::Binary { op, lhs, rhs }, Some(ty))
    }

    /// `lhs + rhs`.
    pub fn add(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    pub fn sub(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    pub fn mul(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(BinOp::Mul, lhs, rhs)
    }

    /// `lhs & rhs`.
    pub fn and(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(BinOp::And, lhs, rhs)
    }

    /// `lhs | rhs`.
    pub fn or(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(BinOp::Or, lhs, rhs)
    }

    /// `lhs ^ rhs`.
    pub fn xor(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(BinOp::Xor, lhs, rhs)
    }

    /// `lhs << rhs`.
    pub fn shl(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(BinOp::Shl, lhs, rhs)
    }

    /// `lhs >> rhs` (logical).
    pub fn lshr(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(BinOp::Lshr, lhs, rhs)
    }

    /// Integer comparison.
    pub fn icmp(&mut self, pred: Pred, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.emit(InstKind::ICmp { pred, lhs, rhs }, Some(Type::I1))
    }

    /// Branchless conditional.
    pub fn select(&mut self, cond: ValueId, then_val: ValueId, else_val: ValueId) -> ValueId {
        let ty = self.func.value(then_val).ty;
        self.emit(
            InstKind::Select {
                cond,
                then_val,
                else_val,
            },
            ty,
        )
    }

    /// Scalar conversion.
    pub fn cast(&mut self, op: CastOp, val: ValueId, to: Type) -> ValueId {
        self.emit(InstKind::Cast { op, val, to }, Some(to))
    }

    /// Allocate `count` elements of `elem_size` bytes; yields a pointer.
    pub fn alloc(&mut self, count: ValueId, elem_size: u64) -> ValueId {
        self.emit(InstKind::Alloc { count, elem_size }, Some(Type::Ptr))
    }

    /// Address of `base[index]` with the given element size.
    pub fn gep(&mut self, base: ValueId, index: ValueId, elem_size: u64) -> ValueId {
        self.emit(
            InstKind::Gep {
                base,
                index,
                elem_size,
                offset: 0,
            },
            Some(Type::Ptr),
        )
    }

    /// Address of `base[index].field` where the field lives `offset` bytes
    /// into each element.
    pub fn gep_field(
        &mut self,
        base: ValueId,
        index: ValueId,
        elem_size: u64,
        offset: u64,
    ) -> ValueId {
        self.emit(
            InstKind::Gep {
                base,
                index,
                elem_size,
                offset,
            },
            Some(Type::Ptr),
        )
    }

    /// Load a scalar of type `ty` from `addr`.
    pub fn load(&mut self, ty: Type, addr: ValueId) -> ValueId {
        self.emit(InstKind::Load { addr, ty }, Some(ty))
    }

    /// Store `value` to `addr`.
    pub fn store(&mut self, value: ValueId, addr: ValueId) -> ValueId {
        self.emit(InstKind::Store { addr, value }, None)
    }

    /// Software prefetch hint for `addr`.
    pub fn prefetch(&mut self, addr: ValueId) -> ValueId {
        self.emit(InstKind::Prefetch { addr }, None)
    }

    /// Phi node with initial incomings; more can be added later with
    /// [`FunctionBuilder::add_phi_incoming`] once latch values exist.
    ///
    /// Phis must be created before non-phi instructions in their block.
    pub fn phi(&mut self, ty: Type, incomings: &[(BlockId, ValueId)]) -> ValueId {
        self.emit(
            InstKind::Phi {
                incomings: incomings.to_vec(),
            },
            Some(ty),
        )
    }

    /// Add an incoming edge to an existing phi.
    ///
    /// # Panics
    /// If `phi` is not a phi instruction.
    pub fn add_phi_incoming(&mut self, phi: ValueId, pred: BlockId, value: ValueId) {
        match &mut self
            .func
            .inst_mut(phi)
            .expect("add_phi_incoming on non-instruction")
            .kind
        {
            InstKind::Phi { incomings } => incomings.push((pred, value)),
            _ => panic!("add_phi_incoming on non-phi"),
        }
    }

    /// Call `callee` with `args`; `ret` must match the callee signature.
    pub fn call(&mut self, callee: FuncId, args: &[ValueId], ret: Option<Type>) -> ValueId {
        self.emit(
            InstKind::Call {
                callee,
                args: args.to_vec(),
            },
            ret,
        )
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) -> ValueId {
        self.emit(InstKind::Br { target }, None)
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) -> ValueId {
        self.emit(
            InstKind::CondBr {
                cond,
                then_bb,
                else_bb,
            },
            None,
        )
    }

    /// Return from the function.
    pub fn ret(&mut self, value: Option<ValueId>) -> ValueId {
        self.emit(InstKind::Ret { value }, None)
    }

    /// Emit `min(a, b)` for signed i64 values as a compare+select pair,
    /// the branchless clamp idiom the prefetch pass uses (§4.3).
    pub fn smin(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let c = self.icmp(Pred::Slt, a, b);
        self.select(c, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;
    use crate::verifier::verify_module;

    #[test]
    fn build_simple_loop_verifies() {
        let mut m = Module::new("t");
        let f = m.declare_function("sum", &[Type::Ptr, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (a, n) = (b.arg(0), b.arg(1));
            let entry = b.entry_block();
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            b.switch_to(entry);
            let zero = b.const_i64(0);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let acc = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let addr = b.gep(a, i, 8);
            let v = b.load(Type::I64, addr);
            let acc2 = b.add(acc, v);
            let one = b.const_i64(1);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(header);
            b.switch_to(exit);
            b.ret(Some(acc));
        }
        verify_module(&m).expect("loop should verify");
    }

    #[test]
    fn smin_emits_cmp_select() {
        let mut m = Module::new("t");
        let f = m.declare_function("min", &[Type::I64, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (x, y) = (b.arg(0), b.arg(1));
            let r = b.smin(x, y);
            b.ret(Some(r));
        }
        verify_module(&m).unwrap();
        assert_eq!(m.function(f).num_placed_insts(), 3);
    }
}
