//! Basic blocks: straight-line instruction sequences ending in a terminator.

use crate::value::ValueId;
use std::fmt;

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The arena slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: an ordered list of instruction value-ids.
///
/// Phis, if any, must come first; the final instruction must be a
/// terminator (enforced by the [`verifier`](crate::verifier)).
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Optional label used by the printer.
    pub name: Option<String>,
    /// Instructions, in execution order. Each entry is the [`ValueId`] of
    /// an instruction in the owning function's value arena.
    pub insts: Vec<ValueId>,
}

impl Block {
    /// Create an empty block with a label.
    #[must_use]
    pub fn with_name(name: impl Into<String>) -> Self {
        Block {
            name: Some(name.into()),
            insts: Vec::new(),
        }
    }

    /// The terminator instruction id, if the block is non-empty.
    ///
    /// The caller must separately check that it really is a terminator;
    /// blocks under construction may end in a non-terminator.
    #[must_use]
    pub fn last(&self) -> Option<ValueId> {
        self.insts.last().copied()
    }

    /// Position of instruction `v` within this block.
    #[must_use]
    pub fn position_of(&self, v: ValueId) -> Option<usize> {
        self.insts.iter().position(|&i| i == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_position_lookup() {
        let mut b = Block::with_name("body");
        b.insts.push(ValueId(4));
        b.insts.push(ValueId(9));
        assert_eq!(b.position_of(ValueId(9)), Some(1));
        assert_eq!(b.position_of(ValueId(5)), None);
        assert_eq!(b.last(), Some(ValueId(9)));
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(3).to_string(), "bb3");
    }
}
