//! Modules: named collections of functions.

use crate::function::{FuncId, Function, Purity};
use crate::types::Type;

/// A compilation unit: a set of functions that may call each other.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name, used in printed output.
    pub name: String,
    functions: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// Add a new function with the given signature; returns its id.
    pub fn declare_function(
        &mut self,
        name: impl Into<String>,
        params: &[Type],
        ret: impl Into<Option<Type>>,
    ) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(Function::new(name, params, ret));
        id
    }

    /// Add a function and mark its purity in one step.
    pub fn declare_function_with_purity(
        &mut self,
        name: impl Into<String>,
        params: &[Type],
        ret: impl Into<Option<Type>>,
        purity: Purity,
    ) -> FuncId {
        let id = self.declare_function(name, params, ret);
        self.functions[id.index()].purity = purity;
        id
    }

    /// Number of functions.
    #[must_use]
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Iterate over function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len() as u32).map(FuncId)
    }

    /// Immutable function access.
    #[must_use]
    pub fn function(&self, f: FuncId) -> &Function {
        &self.functions[f.index()]
    }

    /// Mutable function access.
    pub fn function_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.functions[f.index()]
    }

    /// Find a function by symbol name.
    #[must_use]
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_find() {
        let mut m = Module::new("m");
        let a = m.declare_function("alpha", &[Type::I64], Type::I64);
        let b = m.declare_function("beta", &[], None);
        assert_eq!(m.find_function("alpha"), Some(a));
        assert_eq!(m.find_function("beta"), Some(b));
        assert_eq!(m.find_function("gamma"), None);
        assert_eq!(m.num_functions(), 2);
        assert_eq!(m.function(b).ret, None);
    }

    #[test]
    fn purity_is_recorded() {
        let mut m = Module::new("m");
        let h = m.declare_function_with_purity("hash", &[Type::I64], Type::I64, Purity::Pure);
        assert_eq!(m.function(h).purity, Purity::Pure);
    }
}
