//! Aggregated simulation results.

use crate::cpu::InstCounts;
use crate::memsys::MemSysStats;
use crate::perf::PcProfile;

/// Everything a harness needs to report one simulated run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Simulated execution time in cycles.
    pub cycles: u64,
    /// Instruction-class counters.
    pub insts: InstCounts,
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses (page walks).
    pub tlb_misses: u64,
    /// Lines read from DRAM.
    pub dram_lines_read: u64,
    /// Lines written back to DRAM.
    pub dram_lines_written: u64,
    /// Software-prefetch behaviour.
    pub mem: MemSysStats,
}

impl SimStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts.total as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to a baseline run of the same work.
    #[must_use]
    pub fn speedup_vs(&self, baseline: &SimStats) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Fractional increase in dynamic instruction count relative to a
    /// baseline (Fig. 8's metric: `0.7` means +70%).
    #[must_use]
    pub fn extra_instructions_vs(&self, baseline: &SimStats) -> f64 {
        if baseline.insts.total == 0 {
            0.0
        } else {
            self.insts.total as f64 / baseline.insts.total as f64 - 1.0
        }
    }

    /// L1 miss ratio of demand accesses.
    #[must_use]
    pub fn l1_miss_ratio(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_misses as f64 / total as f64
        }
    }

    /// Every integer counter as `(name, value)` pairs — the flat,
    /// order-stable view machine-readable artifact writers serialise.
    /// Names are the JSON keys of the experiment-result schema
    /// (DESIGN.md §5); extend this list when adding counters so every
    /// artifact picks them up automatically.
    #[must_use]
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cycles", self.cycles),
            ("insts_total", self.insts.total),
            ("insts_loads", self.insts.loads),
            ("insts_stores", self.insts.stores),
            ("insts_prefetches", self.insts.prefetches),
            ("insts_branches", self.insts.branches),
            ("l1_hits", self.l1_hits),
            ("l1_misses", self.l1_misses),
            ("l2_hits", self.l2_hits),
            ("l2_misses", self.l2_misses),
            ("tlb_hits", self.tlb_hits),
            ("tlb_misses", self.tlb_misses),
            ("dram_lines_read", self.dram_lines_read),
            ("dram_lines_written", self.dram_lines_written),
            ("sw_prefetches", self.mem.sw_prefetches),
            ("sw_prefetches_dropped", self.mem.sw_prefetches_dropped),
            (
                "sw_prefetches_redundant",
                self.mem.sw_prefetches_redundant(),
            ),
            (
                "sw_prefetches_redundant_resident",
                self.mem.sw_prefetches_redundant_resident,
            ),
            (
                "sw_prefetches_redundant_inflight",
                self.mem.sw_prefetches_redundant_inflight,
            ),
            ("late_fill_hits", self.mem.late_fill_hits),
            ("hw_prefetch_fills", self.mem.hw_prefetch_fills),
        ]
    }
}

/// One simulated core's complete result: the aggregate counters plus,
/// when per-PC profiling was enabled ([`crate::perf`]), the attribution
/// profile. The `*_perf` run entry points return this; the plain ones
/// keep returning bare [`SimStats`].
#[derive(Debug, Clone, Default)]
pub struct SimRun {
    /// Aggregate counters — bit-identical whether or not profiling ran.
    pub stats: SimStats,
    /// Per-PC attribution; `None` unless profiling was enabled when the
    /// machine was built.
    pub perf: Option<PcProfile>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let base = SimStats {
            cycles: 1000,
            insts: InstCounts {
                total: 500,
                ..InstCounts::default()
            },
            ..SimStats::default()
        };
        let fast = SimStats {
            cycles: 400,
            insts: InstCounts {
                total: 800,
                ..InstCounts::default()
            },
            ..SimStats::default()
        };
        assert!((fast.speedup_vs(&base) - 2.5).abs() < 1e-9);
        assert!((fast.extra_instructions_vs(&base) - 0.6).abs() < 1e-9);
        assert!((base.ipc() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let z = SimStats::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.speedup_vs(&z), 0.0);
    }
}
