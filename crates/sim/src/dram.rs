//! DRAM: fixed load-to-use latency plus a bandwidth occupancy queue.
//!
//! Every line transfer (demand fill, prefetch fill, write-back) occupies
//! the channel for `LINE_BYTES / bytes_per_cycle` cycles. When requests
//! arrive faster than the channel drains, the queue pushes completion
//! times out — which is how bandwidth saturation (Fig. 9) and the
//! partial benefit of prefetching under saturation emerge without any
//! dedicated modelling.

use crate::presets::DramConfig;
use crate::{LINE_BYTES, TICKS_PER_CYCLE};

/// A single DRAM channel shared by everything below the caches.
#[derive(Debug, Clone)]
pub struct Dram {
    latency_ticks: u64,
    occupancy_ticks: u64,
    next_free: u64,
    lines_read: u64,
    lines_written: u64,
}

impl Dram {
    /// Build from a configuration.
    #[must_use]
    pub fn new(cfg: &DramConfig) -> Self {
        Dram {
            latency_ticks: cfg.latency * TICKS_PER_CYCLE,
            occupancy_ticks: (LINE_BYTES * TICKS_PER_CYCLE) / cfg.bytes_per_cycle.max(1),
            next_free: 0,
            lines_read: 0,
            lines_written: 0,
        }
    }

    /// Request a line fill at tick `now`; returns the completion tick.
    pub fn fill(&mut self, now: u64) -> u64 {
        let start = self.next_free.max(now);
        self.next_free = start + self.occupancy_ticks;
        self.lines_read += 1;
        start + self.latency_ticks
    }

    /// Charge a write-back: occupies bandwidth but nothing waits for it.
    pub fn writeback(&mut self, now: u64) {
        let start = self.next_free.max(now);
        self.next_free = start + self.occupancy_ticks;
        self.lines_written += 1;
    }

    /// Total lines transferred from DRAM.
    #[must_use]
    pub fn lines_read(&self) -> u64 {
        self.lines_read
    }

    /// Total lines written back to DRAM.
    #[must_use]
    pub fn lines_written(&self) -> u64 {
        self.lines_written
    }

    /// The earliest tick a new transfer could start.
    #[must_use]
    pub fn next_free(&self) -> u64 {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        // 100-cycle latency, 8 B/cycle → line occupancy 8 cycles.
        Dram::new(&DramConfig {
            latency: 100,
            bytes_per_cycle: 8,
        })
    }

    #[test]
    fn idle_fill_takes_latency() {
        let mut d = dram();
        let done = d.fill(1000);
        assert_eq!(done, 1000 + 100 * TICKS_PER_CYCLE);
    }

    #[test]
    fn back_to_back_fills_queue_on_bandwidth() {
        let mut d = dram();
        let occ = (LINE_BYTES * TICKS_PER_CYCLE) / 8;
        let a = d.fill(0);
        let b = d.fill(0);
        let c = d.fill(0);
        assert_eq!(b - a, occ, "second fill starts after first's occupancy");
        assert_eq!(c - b, occ);
        assert_eq!(d.lines_read(), 3);
    }

    #[test]
    fn writebacks_consume_bandwidth() {
        let mut d = dram();
        d.writeback(0);
        let done = d.fill(0);
        let occ = (LINE_BYTES * TICKS_PER_CYCLE) / 8;
        assert_eq!(
            done,
            occ + 100 * TICKS_PER_CYCLE,
            "fill waits behind the write-back"
        );
        assert_eq!(d.lines_written(), 1);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut d = dram();
        d.fill(0);
        // Much later, the channel is idle again.
        let done = d.fill(1_000_000);
        assert_eq!(done, 1_000_000 + 100 * TICKS_PER_CYCLE);
    }
}
