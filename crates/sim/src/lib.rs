//! # swpf-sim — an execution-driven timing simulator for `swpf-ir`
//!
//! The CGO'17 paper evaluates its prefetching pass on four real machines
//! (Intel Haswell, Intel Xeon Phi 3120P, ARM Cortex-A57, ARM Cortex-A53).
//! This crate is the substitute substrate: it watches every instruction
//! the [`swpf_ir::interp`] interpreter retires and charges time to a
//! configurable microarchitecture model. It captures the first-order
//! effects the paper's cross-architecture analysis rests on:
//!
//! * **in-order vs. out-of-order** ([`cpu`]): the in-order model stalls
//!   on every load miss (the paper's description of the A53/Xeon Phi);
//!   the out-of-order model issues by dataflow, bounded by a reorder
//!   buffer and a limited number of outstanding demand misses (MSHRs) —
//!   so it extracts memory-level parallelism on its own, which is why
//!   Haswell/A57 gain far less from software prefetching (Fig. 4);
//! * **multi-level caches** ([`cache`], [`memsys`]) with timed fills, so
//!   a *late* prefetch (offset too small) gives only partial benefit and
//!   an *early* prefetch (offset too big) can be evicted before use —
//!   the two failure modes of Fig. 2 and the look-ahead sweep of Fig. 6;
//! * **TLBs with limited page-table walkers** ([`tlb`]): the A57 supports
//!   a single walk at a time, capping its gains; transparent huge pages
//!   (Fig. 10) shrink the page-walk load;
//! * **DRAM latency and bandwidth** ([`dram`]): a line-occupancy queue
//!   whose saturation reproduces the multi-core throughput collapse of
//!   Fig. 9 (including dirty-line writebacks, which matter for IS);
//! * **a hardware stride prefetcher** ([`stride`]), so sequential
//!   accesses are already fast without software help and only *indirect*
//!   accesses benefit from the pass, as in the paper's machines.
//!
//! Because the timing models consume nothing but the retire-event
//! stream, every machine supports three equivalent execution paths:
//! **direct** (interpreter drives the observer), **traced** (direct
//! plus a `swpf-trace` recording tee'd in), and **replay** (a recorded
//! trace drives the observer with no interpreter at all) — the replayed
//! statistics are bit-identical to direct simulation, single- and
//! multi-core ([`machine`], [`multicore`]).
//!
//! Absolute cycle counts are not the point — the paper's authors had
//! silicon; we have a model. The claims this simulator supports are the
//! *relative* ones: who wins, by roughly what factor, and where the
//! crossovers sit.

pub mod cache;
pub mod cpu;
pub mod dram;
pub mod machine;
pub mod memsys;
pub mod multicore;
pub mod perf;
pub mod presets;
pub mod stats;
pub mod stride;
pub mod tlb;

pub use machine::{
    replay_on_machine, replay_on_machine_perf, replay_on_machines, replay_on_machines_perf,
    run_module_on_machines, run_on_machine, run_on_machine_image, run_on_machine_image_perf,
    run_on_machine_image_tier, run_on_machine_image_tier_perf, run_on_machine_traced,
    run_on_machine_traced_perf, run_on_machines_image, run_on_machines_image_perf,
    streaming_replay_on_machine, streaming_replay_on_machine_perf, streaming_replay_on_machines,
    streaming_replay_on_machines_perf, Machine,
};
pub use memsys::{AccessKind, MemSys, SharedMem};
pub use multicore::{
    replay_multicore, replay_multicore_perf, run_multicore, run_multicore_image,
    run_multicore_image_perf, run_multicore_image_tier, run_multicore_image_traced,
    run_multicore_image_traced_perf, streaming_replay_multicore, streaming_replay_multicore_perf,
};
pub use perf::{PcProfile, SiteProfile, StallStat};
pub use presets::{CoreKind, MachineConfig};
pub use stats::{SimRun, SimStats};
pub use swpf_ir::interp::Tier;

/// Sub-cycle resolution: all internal times are in ticks.
///
/// Issue width `w` means one instruction every `TICKS_PER_CYCLE / w`
/// ticks; latencies are multiplied by this constant once, in
/// [`presets::MachineConfig`] conversion helpers. 24 divides evenly by
/// every modelled issue width (1–4, 6, 8), so no width is silently
/// rounded up.
pub const TICKS_PER_CYCLE: u64 = 24;

/// Cache line size in bytes, common to every modelled machine.
pub const LINE_BYTES: u64 = 64;
