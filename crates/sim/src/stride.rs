//! Per-PC hardware stride prefetcher.
//!
//! All four evaluated machines detect constant-stride streams in
//! hardware, which is why the paper leaves plain stride loads alone
//! (§4.3) — and why the *indirect* loads, whose addresses are
//! data-dependent, still need software help. The table is indexed by the
//! static instruction (PC); after two consecutive accesses with the same
//! stride it issues fills a configurable distance ahead.

/// One entry of the reference-prediction table.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// Detected-stream prefetch request: lines the prefetcher wants filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideFill {
    /// Address to fill.
    pub addr: u64,
}

/// A reference-prediction-table stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    /// How many strides ahead to fetch once confident.
    pub distance: i64,
    /// How many consecutive matching strides before prefetching.
    pub threshold: u8,
    issued: u64,
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new(64, 16, 2)
    }
}

impl StridePrefetcher {
    /// Create with `slots` table entries, prefetching `distance` strides
    /// ahead after `threshold` confirmations.
    #[must_use]
    pub fn new(slots: usize, distance: i64, threshold: u8) -> Self {
        StridePrefetcher {
            table: vec![Entry::default(); slots.max(1)],
            distance,
            threshold,
            issued: 0,
        }
    }

    /// Observe a demand access; returns a fill request when a stream is
    /// confident. Strides of zero or beyond 2 KiB are ignored (not
    /// streams a real prefetcher tracks).
    pub fn observe(&mut self, pc: u64, addr: u64) -> Option<StrideFill> {
        let idx = (pc as usize) % self.table.len();
        let e = &mut self.table[idx];
        if !e.valid || e.pc != pc {
            *e = Entry {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return None;
        }
        let stride = addr.wrapping_sub(e.last_addr) as i64;
        if stride == e.stride && stride != 0 && stride.abs() <= 2048 {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence >= self.threshold {
            let target = addr.wrapping_add((e.stride * self.distance) as u64);
            self.issued += 1;
            return Some(StrideFill { addr: target });
        }
        None
    }

    /// Number of fills issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unit_stride_stream() {
        let mut p = StridePrefetcher::new(16, 16, 2);
        assert_eq!(p.observe(7, 0x1000), None);
        assert_eq!(p.observe(7, 0x1004), None); // stride learned
        assert_eq!(p.observe(7, 0x1008), None); // confidence 1
        let f = p.observe(7, 0x100C).expect("confident now");
        assert_eq!(f.addr, 0x100C + 4 * 16);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn random_addresses_never_trigger() {
        let mut p = StridePrefetcher::new(16, 16, 2);
        let mut x = 12345u64;
        for _ in 0..100 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            assert_eq!(p.observe(3, x & 0xFFFF_FFC0), None);
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn negative_strides_are_tracked() {
        let mut p = StridePrefetcher::new(16, 4, 2);
        for i in 0..3 {
            p.observe(9, 0x10000 - i * 8);
        }
        let f = p.observe(9, 0x10000 - 3 * 8).expect("down stream");
        assert_eq!(f.addr, 0x10000 - 3 * 8 - 8 * 4);
    }

    #[test]
    fn interleaved_pcs_use_separate_entries() {
        let mut p = StridePrefetcher::new(16, 16, 2);
        for i in 0..8u64 {
            p.observe(1, 0x1000 + i * 4);
            p.observe(2, 0x8000 + i * 8);
        }
        assert!(p.issued() >= 8, "both streams detected");
    }

    #[test]
    fn huge_strides_ignored() {
        let mut p = StridePrefetcher::new(16, 16, 2);
        for i in 0..10u64 {
            assert_eq!(p.observe(4, i * 1_000_000), None);
        }
    }
}
