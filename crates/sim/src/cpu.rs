//! Core timing models: stall-on-miss in-order and dataflow out-of-order.

use crate::memsys::{AccessKind, MemSys, SharedMem};
use crate::presets::{CoreKind, MachineConfig};
use crate::TICKS_PER_CYCLE;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use swpf_ir::interp::EventKind;

/// Instruction-class counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstCounts {
    /// All retired instructions.
    pub total: u64,
    /// Demand loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Software prefetches.
    pub prefetches: u64,
    /// Branches.
    pub branches: u64,
}

/// A core timing model consuming interpreter events.
#[derive(Debug)]
pub enum Core {
    /// Stall-on-miss pipeline.
    InOrder(InOrder),
    /// Dataflow issue bounded by ROB and MSHRs.
    OutOfOrder(OutOfOrder),
}

impl Core {
    /// Build the model matching a machine configuration.
    #[must_use]
    pub fn new(cfg: &MachineConfig) -> Self {
        match cfg.core {
            CoreKind::InOrder => Core::InOrder(InOrder::new(cfg)),
            CoreKind::OutOfOrder => Core::OutOfOrder(OutOfOrder::new(cfg)),
        }
    }

    /// Account one retired instruction; advances the model's clock.
    #[allow(clippy::too_many_arguments)]
    pub fn retire(
        &mut self,
        mem: &mut MemSys,
        shared: &mut SharedMem,
        kind: EventKind,
        frame: u64,
        result: u32,
        operands: &[swpf_ir::ValueId],
        pc: u64,
    ) {
        match self {
            Core::InOrder(c) => c.retire(mem, shared, kind, pc),
            Core::OutOfOrder(c) => c.retire(mem, shared, kind, frame, result, operands, pc),
        }
    }

    /// Current completion time in ticks.
    #[must_use]
    pub fn clock_ticks(&self) -> u64 {
        match self {
            Core::InOrder(c) => c.clock,
            Core::OutOfOrder(c) => c.clock,
        }
    }

    /// Current completion time in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.clock_ticks() / TICKS_PER_CYCLE
    }

    /// Instruction-class counters.
    #[must_use]
    pub fn counts(&self) -> InstCounts {
        match self {
            Core::InOrder(c) => c.counts,
            Core::OutOfOrder(c) => c.counts,
        }
    }
}

/// In-order pipeline: issues `width` instructions per cycle in program
/// order and stalls completely on any load that misses in the L1
/// (the paper's characterisation of the A53 and Xeon Phi cores).
/// Stores and prefetches retire without stalling.
#[derive(Debug)]
pub struct InOrder {
    issue_inc: u64,
    /// Latencies at or below this are absorbed by the pipeline.
    pipelined_ticks: u64,
    next_issue: u64,
    clock: u64,
    counts: InstCounts,
}

impl InOrder {
    fn new(cfg: &MachineConfig) -> Self {
        InOrder {
            issue_inc: cfg.issue_interval_ticks(),
            pipelined_ticks: cfg.l1.latency * TICKS_PER_CYCLE,
            next_issue: 0,
            clock: 0,
            counts: InstCounts::default(),
        }
    }

    fn retire(&mut self, mem: &mut MemSys, shared: &mut SharedMem, kind: EventKind, pc: u64) {
        self.counts.total += 1;
        let t = self.next_issue;
        match kind {
            EventKind::Load { addr, .. } => {
                self.counts.loads += 1;
                let lat = mem.access(shared, addr, t, AccessKind::Read, pc);
                if lat > self.pipelined_ticks {
                    // Stall: nothing issues until the data returns.
                    mem.record_stall(pc, lat - self.pipelined_ticks);
                    self.next_issue = t + lat;
                } else {
                    self.next_issue = t + self.issue_inc;
                }
            }
            EventKind::Store { addr, .. } => {
                self.counts.stores += 1;
                let _ = mem.access(shared, addr, t, AccessKind::Write, pc);
                self.next_issue = t + self.issue_inc;
            }
            EventKind::Prefetch { addr, valid } => {
                self.counts.prefetches += 1;
                if valid {
                    mem.prefetch(shared, addr, t, pc);
                }
                self.next_issue = t + self.issue_inc;
            }
            EventKind::Branch { .. } => {
                self.counts.branches += 1;
                self.next_issue = t + self.issue_inc;
            }
            _ => {
                self.next_issue = t + self.issue_inc;
            }
        }
        self.clock = self.clock.max(self.next_issue);
    }
}

/// Out-of-order core: each instruction issues when its operands are
/// ready, subject to issue bandwidth, a reorder buffer (an instruction
/// cannot issue more than `rob` instructions ahead of the oldest
/// incomplete one), and a bounded number of outstanding demand misses
/// (MSHRs). This is what lets Haswell and the A57 overlap independent
/// indirect misses on their own — the reason their prefetch speedups are
/// modest compared to the in-order cores (paper Fig. 4).
#[derive(Debug)]
pub struct OutOfOrder {
    issue_inc: u64,
    rob: usize,
    mshrs: usize,
    alu_ticks: u64,
    miss_threshold: u64,
    /// Per-frame value readiness, grown on demand.
    ready: HashMap<u64, Vec<u64>>,
    /// Program-order retirement times of in-flight instructions.
    rob_q: VecDeque<u64>,
    last_retire: u64,
    last_issue: u64,
    /// Completion times of outstanding demand misses (min-heap).
    misses: BinaryHeap<std::cmp::Reverse<u64>>,
    clock: u64,
    counts: InstCounts,
}

impl OutOfOrder {
    fn new(cfg: &MachineConfig) -> Self {
        OutOfOrder {
            issue_inc: cfg.issue_interval_ticks(),
            rob: cfg.rob.max(8),
            mshrs: cfg.mshrs.max(1),
            alu_ticks: TICKS_PER_CYCLE,
            miss_threshold: cfg.l1.latency * TICKS_PER_CYCLE,
            ready: HashMap::new(),
            rob_q: VecDeque::new(),
            last_retire: 0,
            last_issue: 0,
            misses: BinaryHeap::new(),
            clock: 0,
            counts: InstCounts::default(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn retire(
        &mut self,
        mem: &mut MemSys,
        shared: &mut SharedMem,
        kind: EventKind,
        frame: u64,
        result: u32,
        operands: &[swpf_ir::ValueId],
        pc: u64,
    ) {
        self.counts.total += 1;
        // Dispatch in program order: bounded by front-end bandwidth and
        // by ROB occupancy (cannot dispatch more than `rob` instructions
        // ahead of the oldest unretired one). Operand readiness does NOT
        // delay dispatch — stalled instructions wait in reservation
        // stations while younger independent work proceeds.
        let mut dispatch = self.last_issue + self.issue_inc;
        if self.rob_q.len() >= self.rob {
            if let Some(oldest) = self.rob_q.pop_front() {
                dispatch = dispatch.max(oldest);
            }
        }
        // Execution waits for operands.
        let mut t = dispatch;
        {
            let regs = self.ready.entry(frame).or_default();
            for op in operands {
                if let Some(&r) = regs.get(op.index()) {
                    t = t.max(r);
                }
            }
        }

        let done = match kind {
            EventKind::Load { addr, .. } => {
                self.counts.loads += 1;
                // Acquire an MSHR: drain completed misses, then wait for
                // the earliest one if all are still busy.
                while let Some(&std::cmp::Reverse(earliest)) = self.misses.peek() {
                    if earliest <= t {
                        self.misses.pop();
                    } else {
                        break;
                    }
                }
                if self.misses.len() >= self.mshrs {
                    if let Some(std::cmp::Reverse(earliest)) = self.misses.pop() {
                        t = t.max(earliest);
                    }
                }
                let lat = mem.access(shared, addr, t, AccessKind::Read, pc);
                let done = t + lat;
                if lat > self.miss_threshold {
                    // Attributed as outstanding-miss latency beyond the
                    // pipelined threshold; the dataflow model may hide
                    // part of it under younger independent work.
                    mem.record_stall(pc, lat - self.miss_threshold);
                    self.misses.push(std::cmp::Reverse(done));
                }
                done
            }
            EventKind::Store { addr, .. } => {
                self.counts.stores += 1;
                let _ = mem.access(shared, addr, t, AccessKind::Write, pc);
                t + self.alu_ticks
            }
            EventKind::Prefetch { addr, valid } => {
                self.counts.prefetches += 1;
                if valid {
                    mem.prefetch(shared, addr, t, pc);
                }
                t + self.alu_ticks
            }
            EventKind::Branch { .. } => {
                self.counts.branches += 1;
                t + self.alu_ticks
            }
            EventKind::Ret => {
                // Frame is dead: free its readiness vector.
                self.ready.remove(&frame);
                t + self.alu_ticks
            }
            _ => t + self.alu_ticks,
        };

        if !matches!(kind, EventKind::Ret) {
            let regs = self.ready.entry(frame).or_default();
            let idx = result as usize;
            if regs.len() <= idx {
                regs.resize(idx + 1, 0);
            }
            regs[idx] = done;
        }

        // In-order retirement.
        self.last_retire = self.last_retire.max(done);
        self.rob_q.push_back(self.last_retire);
        self.last_issue = dispatch;
        self.clock = self.clock.max(self.last_retire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;
    use swpf_ir::ValueId;

    fn setup(cfg: &MachineConfig) -> (Core, MemSys, SharedMem) {
        (Core::new(cfg), MemSys::new(cfg), SharedMem::new(cfg))
    }

    fn alu(core: &mut Core, mem: &mut MemSys, sh: &mut SharedMem, result: u32) {
        core.retire(mem, sh, EventKind::Alu, 0, result, &[], result as u64);
    }

    fn load(core: &mut Core, mem: &mut MemSys, sh: &mut SharedMem, addr: u64, result: u32) {
        core.retire(
            mem,
            sh,
            EventKind::Load { addr, size: 8 },
            0,
            result,
            &[],
            result as u64,
        );
    }

    #[test]
    fn inorder_stalls_on_miss() {
        let cfg = MachineConfig::a53();
        let (mut core, mut mem, mut sh) = setup(&cfg);
        load(&mut core, &mut mem, &mut sh, 0x10_0000, 1);
        let after_miss = core.cycles();
        assert!(after_miss >= cfg.dram.latency, "stalled for the miss");
        // 100 ALU ops afterwards: ~50 cycles at width 2.
        for i in 0..100 {
            alu(&mut core, &mut mem, &mut sh, 10 + i);
        }
        assert!(core.cycles() - after_miss <= 60);
    }

    #[test]
    fn inorder_prefetch_hides_miss() {
        let cfg = MachineConfig::a53();
        let (mut core, mut mem, mut sh) = setup(&cfg);
        // Prefetch, then enough ALU work to cover the fill, then load.
        core.retire(
            &mut mem,
            &mut sh,
            EventKind::Prefetch {
                addr: 0x10_0000,
                valid: true,
            },
            0,
            1,
            &[],
            1,
        );
        for i in 0..800 {
            alu(&mut core, &mut mem, &mut sh, 10 + i);
        }
        let before = core.cycles();
        load(&mut core, &mut mem, &mut sh, 0x10_0000, 900);
        assert!(
            core.cycles() - before < 10,
            "prefetched load must not stall: {} -> {}",
            before,
            core.cycles()
        );
    }

    #[test]
    fn ooo_overlaps_independent_misses() {
        let cfg = MachineConfig::haswell();
        let (mut core, mut mem, mut sh) = setup(&cfg);
        // Ten independent misses to distinct pages.
        for i in 0..10u32 {
            load(
                &mut core,
                &mut mem,
                &mut sh,
                0x100_0000 + u64::from(i) * 8192,
                i + 1,
            );
        }
        let cycles = core.cycles();
        // Serial cost would be ~10 * (200+80) = 2800 cycles; overlapped
        // should be far below half that.
        assert!(
            cycles < 1200,
            "independent misses must overlap, got {cycles}"
        );
    }

    #[test]
    fn ooo_dependent_chain_serialises() {
        let cfg = MachineConfig::haswell();
        let (mut core, mut mem, mut sh) = setup(&cfg);
        // Load 1 -> feeds load 2 -> feeds load 3 (by operand ids).
        core.retire(
            &mut mem,
            &mut sh,
            EventKind::Load {
                addr: 0x100_0000,
                size: 8,
            },
            0,
            1,
            &[],
            1,
        );
        core.retire(
            &mut mem,
            &mut sh,
            EventKind::Load {
                addr: 0x200_0000,
                size: 8,
            },
            0,
            2,
            &[ValueId(1)],
            2,
        );
        core.retire(
            &mut mem,
            &mut sh,
            EventKind::Load {
                addr: 0x300_0000,
                size: 8,
            },
            0,
            3,
            &[ValueId(2)],
            3,
        );
        let cycles = core.cycles();
        assert!(
            cycles >= 3 * cfg.dram.latency,
            "dependent chain must serialise, got {cycles}"
        );
    }

    #[test]
    fn ooo_mshr_limit_caps_parallelism() {
        let few = MachineConfig {
            mshrs: 2,
            ..MachineConfig::haswell()
        };
        let many = MachineConfig::haswell(); // 10 MSHRs
        let run = |cfg: &MachineConfig| {
            let (mut core, mut mem, mut sh) = setup(cfg);
            for i in 0..40u32 {
                load(
                    &mut core,
                    &mut mem,
                    &mut sh,
                    0x100_0000 + u64::from(i) * 8192,
                    i + 1,
                );
            }
            core.cycles()
        };
        let slow = run(&few);
        let fast = run(&many);
        assert!(
            slow > fast * 2,
            "2 MSHRs ({slow}) must be much slower than 10 ({fast})"
        );
    }

    #[test]
    fn ooo_rob_limits_runahead() {
        let small = MachineConfig {
            rob: 8,
            ..MachineConfig::haswell()
        };
        let big = MachineConfig::haswell();
        // One miss followed by many ALU ops: a small ROB blocks issue
        // until the miss retires.
        let run = |cfg: &MachineConfig| {
            let (mut core, mut mem, mut sh) = setup(cfg);
            load(&mut core, &mut mem, &mut sh, 0x100_0000, 1);
            for i in 0..64u32 {
                alu(&mut core, &mut mem, &mut sh, 10 + i);
            }
            core.cycles()
        };
        // Both wait for the miss to retire eventually (it's the clock),
        // so compare issue progress via a second miss placed at the end.
        let run2 = |cfg: &MachineConfig| {
            let (mut core, mut mem, mut sh) = setup(cfg);
            load(&mut core, &mut mem, &mut sh, 0x100_0000, 1);
            for i in 0..200u32 {
                alu(&mut core, &mut mem, &mut sh, 10 + i);
            }
            load(&mut core, &mut mem, &mut sh, 0x200_0000, 500);
            core.cycles()
        };
        let _ = run(&small);
        let slow = run2(&small);
        let fast = run2(&big);
        assert!(
            slow > fast,
            "small ROB ({slow}) must serialise more than big ({fast})"
        );
    }

    #[test]
    fn counts_are_tracked() {
        let cfg = MachineConfig::a53();
        let (mut core, mut mem, mut sh) = setup(&cfg);
        load(&mut core, &mut mem, &mut sh, 0x1000, 1);
        alu(&mut core, &mut mem, &mut sh, 2);
        core.retire(
            &mut mem,
            &mut sh,
            EventKind::Branch { taken: true },
            0,
            3,
            &[],
            3,
        );
        let c = core.counts();
        assert_eq!(c.total, 3);
        assert_eq!(c.loads, 1);
        assert_eq!(c.branches, 1);
    }
}
