//! TLB with a limited number of concurrent page-table walkers.
//!
//! The paper attributes the Cortex-A57's capped prefetch gains to its
//! single page-table walker (§6.1): every new page touched — by a demand
//! load *or* a software prefetch — needs a walk, and walks serialise on
//! the walker. Software prefetches that miss the TLB still install the
//! translation, which is why prefetching doubles as TLB warming on 4 KiB
//! pages (Fig. 10).

use crate::presets::TlbConfig;
use crate::TICKS_PER_CYCLE;

/// A fully-associative TLB with LRU replacement and `walkers` page-table
/// walk ports.
#[derive(Debug, Clone)]
pub struct Tlb {
    page_bits: u32,
    entries: usize,
    walk_latency_ticks: u64,
    /// `(page, ready_tick, last_use)` tuples; linear scan (entry counts
    /// are tens, not thousands).
    slots: Vec<(u64, u64, u64)>,
    /// Tick at which each walker becomes free.
    walker_free: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Build from a configuration.
    #[must_use]
    pub fn new(cfg: &TlbConfig) -> Self {
        Tlb {
            page_bits: cfg.page_bits,
            entries: cfg.entries.max(1) as usize,
            walk_latency_ticks: cfg.walk_latency * TICKS_PER_CYCLE,
            slots: Vec::new(),
            walker_free: vec![0; cfg.walkers.max(1) as usize],
            hits: 0,
            misses: 0,
        }
    }

    fn page_of(&self, addr: u64) -> u64 {
        addr >> self.page_bits
    }

    /// Translate `addr` at tick `now`; returns the tick at which the
    /// translation is available (equal to `now` on a hit, later when a
    /// walk — possibly queued behind other walks — is needed).
    pub fn translate(&mut self, addr: u64, now: u64) -> u64 {
        let page = self.page_of(addr);
        if let Some(slot) = self.slots.iter_mut().find(|s| s.0 == page) {
            slot.2 = now;
            let ready = slot.1;
            self.hits += 1;
            return ready.max(now);
        }
        self.misses += 1;
        // Grab the earliest-free walker.
        let w = self
            .walker_free
            .iter_mut()
            .min_by_key(|t| **t)
            .expect("at least one walker");
        let start = (*w).max(now);
        let done = start + self.walk_latency_ticks;
        *w = done;
        // Install with LRU replacement.
        if self.slots.len() < self.entries {
            self.slots.push((page, done, now));
        } else if let Some(victim) = self.slots.iter_mut().min_by_key(|s| s.2) {
            *victim = (page, done, now);
        }
        done
    }

    /// Lifetime hit count.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(walkers: u32) -> Tlb {
        Tlb::new(&TlbConfig {
            entries: 4,
            page_bits: 12,
            walkers,
            walk_latency: 100,
        })
    }

    #[test]
    fn hit_after_walk() {
        let mut t = tlb(1);
        let walk = 100 * TICKS_PER_CYCLE;
        assert_eq!(t.translate(0x1000, 0), walk);
        assert_eq!(t.translate(0x1FFF, walk), walk, "same page: hit");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn single_walker_serialises_walks() {
        let mut t = tlb(1);
        let walk = 100 * TICKS_PER_CYCLE;
        let a = t.translate(0x1000, 0);
        let b = t.translate(0x2000, 0);
        assert_eq!(a, walk);
        assert_eq!(b, 2 * walk, "second walk queues behind the first");
    }

    #[test]
    fn two_walkers_overlap_walks() {
        let mut t = tlb(2);
        let walk = 100 * TICKS_PER_CYCLE;
        let a = t.translate(0x1000, 0);
        let b = t.translate(0x2000, 0);
        let c = t.translate(0x3000, 0);
        assert_eq!(a, walk);
        assert_eq!(b, walk, "parallel walk");
        assert_eq!(c, 2 * walk, "third queues");
    }

    #[test]
    fn lru_replacement_on_capacity() {
        let mut t = tlb(4);
        for p in 0..4u64 {
            t.translate(p << 12, p);
        }
        // Touch page 0 late so page 1 is the LRU victim.
        let now = 10_000_000;
        t.translate(0, now);
        t.translate(5 << 12, now + 1); // evicts page 1
        let before = t.misses();
        t.translate(1 << 12, now + 2_000_000);
        assert_eq!(t.misses(), before + 1, "page 1 was evicted");
    }

    #[test]
    fn huge_pages_cover_more_addresses() {
        let mut t = Tlb::new(&TlbConfig {
            entries: 4,
            page_bits: 21,
            walkers: 1,
            walk_latency: 100,
        });
        t.translate(0, 0);
        let later = 100 * TICKS_PER_CYCLE;
        assert_eq!(t.translate(1 << 20, later), later, "same 2 MiB page");
        assert_eq!(t.misses(), 1);
    }
}
