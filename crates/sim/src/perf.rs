//! swpf-perf: per-site prefetch-efficacy profiling and simulated-cycle
//! attribution — `perf annotate` for the simulated program.
//!
//! The aggregate counters in [`crate::memsys::MemSysStats`] say *how
//! many* software prefetches were late or redundant; they cannot say
//! *which prefetch instruction* misbehaved. This module attributes
//! every prefetch outcome and every demand-load stall to the issuing
//! program counter, so a tune report can explain "c=64 makes 71% of
//! site @7's prefetches early-evicted" instead of "c=24 is better".
//!
//! ## Outcome taxonomy
//!
//! Each issued prefetch lands in exactly one bucket of a *partition*:
//!
//! * `timely` — the line was demanded while still cached and its fill
//!   had completed: the full miss latency was hidden.
//! * `late` — the line was demanded while its fill was still in
//!   flight: partial benefit (the paper's "offset too small" mode).
//! * `early_evicted` — the line was evicted before its first demand
//!   use: zero benefit, wasted bandwidth ("offset too large").
//! * `redundant_resident` — the line was already cached and ready.
//! * `redundant_inflight` — a fill for the line was already in flight.
//! * `dropped` — the prefetch queue was full; never issued to memory.
//! * `unused_at_end` — still cached but never demanded when the run
//!   ended (or when the bounded tracking table recycled the entry).
//!
//! `issued == timely + late + early_evicted + redundant_resident +
//! redundant_inflight + dropped + unused_at_end` — the conservation
//! invariant `debug_stats` and the test suite assert.
//!
//! ## Purity contract
//!
//! Profiling piggybacks on branches the memory system already takes:
//! it never probes a cache, never perturbs a clock, and never changes
//! a counter. Enabling `SWPF_PERF` must leave every [`crate::SimStats`]
//! counter and every recorded event stream bit-identical (covered by
//! `tests/perf_differential.rs`). When disabled (the default) the cost
//! is one `Option` check per memory operation and no allocation.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use swpf_obs::Hist;

use crate::TICKS_PER_CYCLE;

/// Bounded capacity of the in-flight prefetch tracking table. When a
/// run keeps more distinct prefetched-but-unused lines live than this,
/// the oldest entries are recycled into `unused_at_end` so memory stays
/// bounded regardless of run length.
const TABLE_CAP: usize = 1 << 16;

fn state() -> &'static AtomicBool {
    static STATE: OnceLock<AtomicBool> = OnceLock::new();
    STATE.get_or_init(|| AtomicBool::new(std::env::var_os("SWPF_PERF").is_some_and(|v| v != "0")))
}

/// Is per-PC profiling enabled? Seeded from `SWPF_PERF` (any value but
/// `0`) on first use; flipped explicitly by [`set_enabled`]. Checked at
/// machine *construction* time — toggling mid-run does not affect
/// machines that already exist.
#[must_use]
pub fn enabled() -> bool {
    state().load(Ordering::Relaxed)
}

/// Enable or disable per-PC profiling for machines built after this
/// call (the `--perf` flag and the differential tests use this instead
/// of racing on process environment).
pub fn set_enabled(on: bool) {
    state().store(on, Ordering::Relaxed);
}

/// Per-prefetch-site (static prefetch instruction, keyed by PC) outcome
/// partition and lead-time histogram.
#[derive(Debug, Clone, Default)]
pub struct SiteProfile {
    /// Prefetches issued by this site (the partition total).
    pub issued: u64,
    /// Demanded after the fill completed, while still cached.
    pub timely: u64,
    /// Demanded while the fill was still in flight.
    pub late: u64,
    /// Evicted from every cache level before first demand use.
    pub early_evicted: u64,
    /// Line already resident (fill complete) when prefetched.
    pub redundant_resident: u64,
    /// Line's fill already in flight when prefetched.
    pub redundant_inflight: u64,
    /// Dropped at the full prefetch queue.
    pub dropped: u64,
    /// Never demanded before the run (or table entry) ended.
    pub unused_at_end: u64,
    /// Issue-to-first-demand distance in simulated cycles (recorded for
    /// `timely`, `late`, and `early_evicted` outcomes).
    pub lead_cycles: Hist,
}

impl SiteProfile {
    /// The legacy redundant count: resident + in-flight.
    #[must_use]
    pub fn redundant(&self) -> u64 {
        self.redundant_resident + self.redundant_inflight
    }

    /// Sum of every outcome bucket; equals [`SiteProfile::issued`] when
    /// the partition is conserved.
    #[must_use]
    pub fn classified(&self) -> u64 {
        self.timely
            + self.late
            + self.early_evicted
            + self.redundant_resident
            + self.redundant_inflight
            + self.dropped
            + self.unused_at_end
    }

    /// Does the outcome partition account for every issued prefetch?
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.classified() == self.issued
    }

    /// Fraction of issued prefetches that were timely (0 when none
    /// were issued).
    #[must_use]
    pub fn timely_share(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.timely as f64 / self.issued as f64
        }
    }

    fn merge(&mut self, other: &SiteProfile) {
        self.issued += other.issued;
        self.timely += other.timely;
        self.late += other.late;
        self.early_evicted += other.early_evicted;
        self.redundant_resident += other.redundant_resident;
        self.redundant_inflight += other.redundant_inflight;
        self.dropped += other.dropped;
        self.unused_at_end += other.unused_at_end;
        self.lead_cycles.merge(&other.lead_cycles);
    }
}

/// Demand-load stall time attributed to one retiring PC.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallStat {
    /// Ticks of stall beyond the pipelined (L1-hit) threshold.
    pub stall_ticks: u64,
    /// Stalling loads retired at this PC.
    pub count: u64,
}

impl StallStat {
    /// Stall time in whole simulated cycles.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_ticks / TICKS_PER_CYCLE
    }
}

/// One core's per-PC profile: prefetch sites and load-stall
/// attribution, sorted by PC for stable output.
#[derive(Debug, Clone, Default)]
pub struct PcProfile {
    /// Per prefetch-site outcome partitions, sorted by PC.
    pub sites: Vec<(u64, SiteProfile)>,
    /// Per load-PC stall attribution, sorted by PC.
    pub stalls: Vec<(u64, StallStat)>,
}

impl PcProfile {
    /// Fold another core's profile into this one (site-wise and
    /// stall-wise merge; used to aggregate multicore runs).
    pub fn merge(&mut self, other: &PcProfile) {
        let mut sites: HashMap<u64, SiteProfile> = self.sites.drain(..).collect();
        for (pc, s) in &other.sites {
            sites.entry(*pc).or_default().merge(s);
        }
        let mut stalls: HashMap<u64, StallStat> = self.stalls.drain(..).collect();
        for (pc, s) in &other.stalls {
            let e = stalls.entry(*pc).or_default();
            e.stall_ticks += s.stall_ticks;
            e.count += s.count;
        }
        *self = PcProfile::from_maps(sites, stalls);
    }

    /// Aggregate many per-core profiles into one.
    #[must_use]
    pub fn aggregate<'a>(profiles: impl IntoIterator<Item = &'a PcProfile>) -> PcProfile {
        let mut out = PcProfile::default();
        for p in profiles {
            out.merge(p);
        }
        out
    }

    /// Whole-run totals across every site (partition-wise sum).
    #[must_use]
    pub fn totals(&self) -> SiteProfile {
        let mut t = SiteProfile::default();
        for (_, s) in &self.sites {
            t.merge(s);
        }
        t
    }

    /// Does every site's outcome partition balance?
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.sites.iter().all(|(_, s)| s.conserved())
    }

    /// Total attributed stall cycles across every load PC.
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.stalls.iter().map(|(_, s)| s.stall_cycles()).sum()
    }

    fn from_maps(sites: HashMap<u64, SiteProfile>, stalls: HashMap<u64, StallStat>) -> PcProfile {
        let mut sites: Vec<_> = sites.into_iter().collect();
        sites.sort_by_key(|(pc, _)| *pc);
        let mut stalls: Vec<_> = stalls.into_iter().collect();
        stalls.sort_by_key(|(pc, _)| *pc);
        PcProfile { sites, stalls }
    }
}

struct PfEntry {
    pc: u64,
    issue_tick: u64,
    seq: u64,
}

/// The memory-system side of the profiler: a bounded table mapping
/// in-flight-or-cached prefetched lines to their issuing site, updated
/// only on branches the memory system already takes.
pub(crate) struct MemPerf {
    entries: HashMap<u64, PfEntry>,
    fifo: VecDeque<(u64, u64)>,
    next_seq: u64,
    sites: HashMap<u64, SiteProfile>,
    stalls: HashMap<u64, StallStat>,
}

impl MemPerf {
    pub(crate) fn new() -> Self {
        MemPerf {
            entries: HashMap::new(),
            fifo: VecDeque::new(),
            next_seq: 0,
            sites: HashMap::new(),
            stalls: HashMap::new(),
        }
    }

    fn site(&mut self, pc: u64) -> &mut SiteProfile {
        self.sites.entry(pc).or_default()
    }

    /// A prefetch entered the memory system and will fetch (L3 or DRAM
    /// path): start tracking its line. A still-tracked previous
    /// prefetch of the same line must have been evicted everywhere
    /// unused — classify it `early_evicted` first.
    pub(crate) fn on_issue(&mut self, pc: u64, line: u64, now: u64) {
        self.site(pc).issued += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(old) = self.entries.insert(
            line,
            PfEntry {
                pc,
                issue_tick: now,
                seq,
            },
        ) {
            let s = self.site(old.pc);
            s.early_evicted += 1;
            s.lead_cycles
                .add(now.saturating_sub(old.issue_tick) / TICKS_PER_CYCLE);
        }
        self.fifo.push_back((seq, line));
        self.recycle_overflow();
    }

    /// A prefetch found its line already cached or in flight.
    pub(crate) fn on_redundant(&mut self, pc: u64, resident: bool) {
        let s = self.site(pc);
        s.issued += 1;
        if resident {
            s.redundant_resident += 1;
        } else {
            s.redundant_inflight += 1;
        }
    }

    /// A prefetch was dropped at the full queue.
    pub(crate) fn on_dropped(&mut self, pc: u64) {
        let s = self.site(pc);
        s.issued += 1;
        s.dropped += 1;
    }

    /// A demand access hit a cache level; if the line is tracked, the
    /// prefetch that fetched it is judged: `late` when the fill was
    /// still in flight at demand time, `timely` otherwise.
    pub(crate) fn on_demand_hit(&mut self, line: u64, now: u64, in_flight: bool) {
        let Some(entry) = self.entries.remove(&line) else {
            return;
        };
        let lead = now.saturating_sub(entry.issue_tick) / TICKS_PER_CYCLE;
        let s = self.site(entry.pc);
        if in_flight {
            s.late += 1;
        } else {
            s.timely += 1;
        }
        s.lead_cycles.add(lead);
    }

    /// A demand access missed every level; a tracked line must have
    /// been evicted unused — `early_evicted`.
    pub(crate) fn on_demand_miss(&mut self, line: u64, now: u64) {
        let Some(entry) = self.entries.remove(&line) else {
            return;
        };
        let lead = now.saturating_sub(entry.issue_tick) / TICKS_PER_CYCLE;
        let s = self.site(entry.pc);
        s.early_evicted += 1;
        s.lead_cycles.add(lead);
    }

    /// A demand load stalled the core for `ticks` beyond the pipelined
    /// threshold; attribute it to the retiring PC.
    pub(crate) fn on_stall(&mut self, pc: u64, ticks: u64) {
        let e = self.stalls.entry(pc).or_default();
        e.stall_ticks += ticks;
        e.count += 1;
    }

    fn recycle_overflow(&mut self) {
        while self.entries.len() > TABLE_CAP {
            let Some((seq, line)) = self.fifo.pop_front() else {
                break;
            };
            // Skip stale fifo slots whose entry was already consumed or
            // replaced by a newer prefetch of the same line.
            let current = self.entries.get(&line).is_some_and(|e| e.seq == seq);
            if current {
                let entry = self.entries.remove(&line).expect("checked above");
                self.site(entry.pc).unused_at_end += 1;
            }
        }
    }

    /// Drain: classify still-tracked lines `unused_at_end` and return
    /// the finished profile.
    pub(crate) fn take(&mut self) -> PcProfile {
        let entries = std::mem::take(&mut self.entries);
        self.fifo.clear();
        for (_, entry) in entries {
            self.site(entry.pc).unused_at_end += 1;
        }
        PcProfile::from_maps(
            std::mem::take(&mut self.sites),
            std::mem::take(&mut self.stalls),
        )
    }
}

impl std::fmt::Debug for MemPerf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemPerf")
            .field("tracked", &self.entries.len())
            .field("sites", &self.sites.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_conserved_per_site() {
        let mut p = MemPerf::new();
        p.on_issue(7, 1, 0); // will be timely
        p.on_issue(7, 2, 0); // will be late
        p.on_issue(7, 3, 0); // will be early-evicted
        p.on_redundant(7, true);
        p.on_redundant(7, false);
        p.on_dropped(7);
        p.on_issue(7, 4, 0); // never demanded
        p.on_demand_hit(1, 10_000, false);
        p.on_demand_hit(2, 100, true);
        p.on_demand_miss(3, 50_000);
        let prof = p.take();
        assert_eq!(prof.sites.len(), 1);
        let s = &prof.sites[0].1;
        assert_eq!(s.issued, 7);
        assert_eq!(
            (s.timely, s.late, s.early_evicted, s.unused_at_end),
            (1, 1, 1, 1)
        );
        assert_eq!(
            (s.redundant_resident, s.redundant_inflight, s.dropped),
            (1, 1, 1)
        );
        assert!(s.conserved());
        assert_eq!(s.lead_cycles.count, 3);
    }

    #[test]
    fn reissue_of_tracked_line_marks_old_entry_early() {
        let mut p = MemPerf::new();
        p.on_issue(1, 42, 0);
        p.on_issue(2, 42, 1000);
        let prof = p.take();
        let site1 = &prof.sites.iter().find(|(pc, _)| *pc == 1).unwrap().1;
        assert_eq!(site1.early_evicted, 1);
        let site2 = &prof.sites.iter().find(|(pc, _)| *pc == 2).unwrap().1;
        assert_eq!(site2.unused_at_end, 1);
        assert!(prof.conserved());
    }

    #[test]
    fn table_overflow_recycles_oldest_as_unused() {
        let mut p = MemPerf::new();
        for i in 0..(TABLE_CAP as u64 + 10) {
            p.on_issue(9, i, i);
        }
        assert!(p.entries.len() <= TABLE_CAP);
        let prof = p.take();
        let s = &prof.sites[0].1;
        assert_eq!(s.issued, TABLE_CAP as u64 + 10);
        assert_eq!(s.unused_at_end, s.issued);
        assert!(s.conserved());
    }

    #[test]
    fn merge_and_totals_accumulate() {
        let mut a = MemPerf::new();
        a.on_issue(1, 1, 0);
        a.on_demand_hit(1, 2400, false);
        a.on_stall(5, 480);
        let pa = a.take();
        let mut b = MemPerf::new();
        b.on_issue(1, 1, 0);
        b.on_demand_hit(1, 100, true);
        b.on_stall(5, 240);
        let pb = b.take();
        let agg = PcProfile::aggregate([&pa, &pb]);
        let t = agg.totals();
        assert_eq!((t.issued, t.timely, t.late), (2, 1, 1));
        assert_eq!(agg.stalls.len(), 1);
        assert_eq!(agg.stalls[0].1.count, 2);
        assert_eq!(agg.total_stall_cycles(), (480 + 240) / TICKS_PER_CYCLE);
        assert!(agg.conserved());
    }
}
