//! The per-core memory system: L1 + L2 + TLB + stride prefetcher, backed
//! by a (possibly shared) last-level cache and DRAM channel.

use crate::cache::{Cache, Lookup};
use crate::dram::Dram;
use crate::perf::{self, MemPerf, PcProfile};
use crate::presets::MachineConfig;
use crate::stride::StridePrefetcher;
use crate::tlb::Tlb;
use crate::LINE_BYTES;

/// Demand access flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load: the core waits for the returned latency.
    Read,
    /// A store: write-allocate; latency is absorbed by the store buffer
    /// but cache/DRAM state changes all the same.
    Write,
}

/// State shared between cores: the last-level cache (when the machine has
/// one) and the DRAM channel.
#[derive(Debug)]
pub struct SharedMem {
    /// Optional L3.
    pub l3: Option<Cache>,
    /// The DRAM channel.
    pub dram: Dram,
}

impl SharedMem {
    /// Build the shared portion of a machine.
    #[must_use]
    pub fn new(cfg: &MachineConfig) -> Self {
        SharedMem {
            l3: cfg.l3.as_ref().map(Cache::new),
            dram: Dram::new(&cfg.dram),
        }
    }
}

/// Per-core memory-system statistics beyond the raw cache counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemSysStats {
    /// Software prefetches sent to the memory system.
    pub sw_prefetches: u64,
    /// Prefetches dropped because the prefetch queue was full.
    pub sw_prefetches_dropped: u64,
    /// Prefetches that found the line already present and ready.
    pub sw_prefetches_redundant_resident: u64,
    /// Prefetches that found a fill for the line already in flight.
    pub sw_prefetches_redundant_inflight: u64,
    /// Demand accesses that hit a line whose fill was still in flight
    /// (late prefetch: partial benefit).
    pub late_fill_hits: u64,
    /// Fills issued by the hardware stride prefetcher.
    pub hw_prefetch_fills: u64,
}

impl MemSysStats {
    /// Prefetches that found the line already present or in flight —
    /// the historical aggregate counter, kept as the sum of its two
    /// refined halves so existing artifacts and checks stay valid.
    #[must_use]
    pub fn sw_prefetches_redundant(&self) -> u64 {
        self.sw_prefetches_redundant_resident + self.sw_prefetches_redundant_inflight
    }
}

/// The private memory hierarchy of one core.
#[derive(Debug)]
pub struct MemSys {
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
    stride: Option<StridePrefetcher>,
    pf_outstanding: Vec<u64>,
    pf_capacity: usize,
    /// High-bit salt distinguishing this core's simulated address space
    /// in *shared* structures. Each core of a multicore run executes its
    /// own program copy whose interpreter addresses start at the same
    /// heap base; without the salt, different cores' data would falsely
    /// share L3 lines.
    address_space: u64,
    stats: MemSysStats,
    /// Per-PC prefetch-outcome and stall attribution; `None` (the
    /// default) keeps the demand path allocation-free. Enabled at
    /// construction time when [`crate::perf::enabled`] is set.
    perf: Option<Box<MemPerf>>,
}

impl MemSys {
    /// Build the private hierarchy from a machine configuration.
    #[must_use]
    pub fn new(cfg: &MachineConfig) -> Self {
        MemSys {
            l1: Cache::new(&cfg.l1),
            l2: Cache::new(&cfg.l2),
            tlb: Tlb::new(&cfg.tlb),
            stride: cfg.hw_stride_prefetcher.then(StridePrefetcher::default),
            pf_outstanding: Vec::new(),
            pf_capacity: cfg.prefetch_queue.max(1),
            address_space: 0,
            stats: MemSysStats::default(),
            perf: perf::enabled().then(|| Box::new(MemPerf::new())),
        }
    }

    /// Tag this core's addresses with a distinct address-space id
    /// (multicore runs give each core its own).
    pub fn set_address_space(&mut self, id: u64) {
        self.address_space = id << 44;
    }

    /// Perform a demand access at tick `now`; returns the load-to-use
    /// latency in ticks (0-ish for L1 hits).
    pub fn access(
        &mut self,
        shared: &mut SharedMem,
        addr: u64,
        now: u64,
        kind: AccessKind,
        pc: u64,
    ) -> u64 {
        let is_write = kind == AccessKind::Write;
        let addr = addr | self.address_space;
        // Address translation first; a miss costs a (possibly queued)
        // page-table walk.
        let t = self.tlb.translate(addr, now);

        // L1.
        if let Lookup::Hit { ready_at } = self.l1.access(addr, t, is_write) {
            if ready_at > t {
                self.stats.late_fill_hits += 1;
            }
            if let Some(p) = &mut self.perf {
                p.on_demand_hit(addr / LINE_BYTES, now, ready_at > t);
            }
            let data = ready_at.max(t) + self.l1.latency_ticks;
            return data - now;
        }

        // Train the stride prefetcher on L1 misses; its fills go to L2.
        if let Some(sp) = &mut self.stride {
            if let Some(fill) = sp.observe(pc, addr) {
                self.stats.hw_prefetch_fills += 1;
                hw_fill_l2(&mut self.l2, shared, fill.addr, now);
            }
        }

        // L2.
        if let Lookup::Hit { ready_at } = self.l2.access(addr, t, false) {
            if ready_at > t {
                self.stats.late_fill_hits += 1;
            }
            if let Some(p) = &mut self.perf {
                p.on_demand_hit(addr / LINE_BYTES, now, ready_at > t);
            }
            let data = ready_at.max(t) + self.l2.latency_ticks;
            let v1 = self.l1.insert(addr, t, data, is_write);
            self.spill_from_l1(shared, v1, t);
            return data - now;
        }

        // L3 (when present).
        let l3_hit = shared
            .l3
            .as_mut()
            .and_then(|l3| match l3.access(addr, t, false) {
                Lookup::Hit { ready_at } => {
                    Some((ready_at.max(t) + l3.latency_ticks, ready_at > t))
                }
                Lookup::Miss => None,
            });
        if let Some((data, in_flight)) = l3_hit {
            if let Some(p) = &mut self.perf {
                p.on_demand_hit(addr / LINE_BYTES, now, in_flight);
            }
            let v2 = self.l2.insert(addr, t, data, false);
            self.spill_from_l2(shared, v2, t);
            let v1 = self.l1.insert(addr, t, data, is_write);
            self.spill_from_l1(shared, v1, t);
            return data - now;
        }

        // DRAM: a tracked prefetched line missing every level must have
        // been evicted before use.
        if let Some(p) = &mut self.perf {
            p.on_demand_miss(addr / LINE_BYTES, now);
        }
        let data = shared.dram.fill(t);
        self.install_all_levels(shared, addr, t, data, is_write);
        data - now
    }

    /// Install a freshly-fetched line in every level, propagating dirty
    /// evictions one level down at a time.
    fn install_all_levels(
        &mut self,
        shared: &mut SharedMem,
        addr: u64,
        t: u64,
        data: u64,
        is_write: bool,
    ) {
        if let Some(l3) = &mut shared.l3 {
            if l3.insert(addr, t, data, false).is_some() {
                shared.dram.writeback(t);
            }
        }
        let v2 = self.l2.insert(addr, t, data, false);
        self.spill_from_l2(shared, v2, t);
        let v1 = self.l1.insert(addr, t, data, is_write);
        self.spill_from_l1(shared, v1, t);
    }

    /// A dirty line evicted from L1 lands in L2 when present, else keeps
    /// falling down the hierarchy.
    fn spill_from_l1(&mut self, shared: &mut SharedMem, victim: Option<u64>, t: u64) {
        let Some(addr) = victim else { return };
        if self.l2.mark_dirty(addr) {
            return;
        }
        Self::spill_into_shared(shared, addr, t);
    }

    /// A dirty line evicted from L2 lands in L3 when present, else DRAM.
    fn spill_from_l2(&mut self, shared: &mut SharedMem, victim: Option<u64>, t: u64) {
        let Some(addr) = victim else { return };
        Self::spill_into_shared(shared, addr, t);
    }

    fn spill_into_shared(shared: &mut SharedMem, addr: u64, t: u64) {
        if let Some(l3) = &mut shared.l3 {
            if l3.mark_dirty(addr) {
                return;
            }
        }
        shared.dram.writeback(t);
    }

    /// Issue a software prefetch at tick `now` on behalf of the static
    /// prefetch instruction at `pc`. Never blocks the core; fills L1
    /// (and the levels below) when the line is absent.
    pub fn prefetch(&mut self, shared: &mut SharedMem, addr: u64, now: u64, pc: u64) {
        let addr = addr | self.address_space;
        self.stats.sw_prefetches += 1;
        self.pf_outstanding.retain(|&done| done > now);
        if self.pf_outstanding.len() >= self.pf_capacity {
            self.stats.sw_prefetches_dropped += 1;
            if let Some(p) = &mut self.perf {
                p.on_dropped(pc);
            }
            return;
        }
        // Prefetches translate too — installing TLB entries early is one
        // of the side benefits the paper measures (Fig. 10).
        let t = self.tlb.translate(addr, now);
        if let Lookup::Hit { ready_at } = self.l1.probe(addr) {
            if ready_at > now {
                self.stats.sw_prefetches_redundant_inflight += 1;
            } else {
                self.stats.sw_prefetches_redundant_resident += 1;
            }
            if let Some(p) = &mut self.perf {
                p.on_redundant(pc, ready_at <= now);
            }
            return;
        }
        if let Lookup::Hit { ready_at } = self.l2.access(addr, t, false) {
            let data = ready_at.max(t) + self.l2.latency_ticks;
            let v1 = self.l1.insert(addr, t, data, false);
            self.spill_from_l1(shared, v1, t);
            if ready_at > now {
                self.stats.sw_prefetches_redundant_inflight += 1;
            } else {
                self.stats.sw_prefetches_redundant_resident += 1;
            }
            if let Some(p) = &mut self.perf {
                p.on_redundant(pc, ready_at <= now);
            }
            return;
        }
        let l3_hit = shared
            .l3
            .as_mut()
            .and_then(|l3| match l3.access(addr, t, false) {
                Lookup::Hit { ready_at } => Some(ready_at.max(t) + l3.latency_ticks),
                Lookup::Miss => None,
            });
        if let Some(data) = l3_hit {
            // Pulled closer from the LLC: a useful prefetch, judged at
            // demand time like a DRAM fetch (not redundant).
            if let Some(p) = &mut self.perf {
                p.on_issue(pc, addr / LINE_BYTES, now);
            }
            let v2 = self.l2.insert(addr, t, data, false);
            self.spill_from_l2(shared, v2, t);
            let v1 = self.l1.insert(addr, t, data, false);
            self.spill_from_l1(shared, v1, t);
            return;
        }
        if let Some(p) = &mut self.perf {
            p.on_issue(pc, addr / LINE_BYTES, now);
        }
        let data = shared.dram.fill(t);
        self.pf_outstanding.push(data);
        self.install_all_levels(shared, addr, t, data, false);
    }

    /// Attribute `ticks` of demand-load stall (beyond the pipelined
    /// threshold) to the load retiring at `pc`. No-op unless per-PC
    /// profiling was enabled when this memory system was built.
    pub fn record_stall(&mut self, pc: u64, ticks: u64) {
        if let Some(p) = &mut self.perf {
            p.on_stall(pc, ticks);
        }
    }

    /// Finish per-PC profiling: classify still-tracked prefetched lines
    /// as `unused_at_end` and hand the profile over. `None` when
    /// profiling was not enabled for this memory system.
    pub fn take_perf(&mut self) -> Option<PcProfile> {
        self.perf.take().map(|mut p| p.take())
    }

    /// L1 hit latency in ticks (used by core models as the "pipelined,
    /// no stall" threshold).
    #[must_use]
    pub fn l1_latency_ticks(&self) -> u64 {
        self.l1.latency_ticks
    }

    /// Memory-system statistics.
    #[must_use]
    pub fn stats(&self) -> MemSysStats {
        self.stats
    }

    /// Cache counters: `(l1_hits, l1_misses, l2_hits, l2_misses)`.
    #[must_use]
    pub fn cache_counters(&self) -> (u64, u64, u64, u64) {
        (
            self.l1.hits(),
            self.l1.misses(),
            self.l2.hits(),
            self.l2.misses(),
        )
    }

    /// TLB counters: `(hits, misses)`.
    #[must_use]
    pub fn tlb_counters(&self) -> (u64, u64) {
        (self.tlb.hits(), self.tlb.misses())
    }
}

/// Fill `addr` into L2 on behalf of the hardware stride prefetcher.
fn hw_fill_l2(l2: &mut Cache, shared: &mut SharedMem, addr: u64, now: u64) {
    if matches!(l2.probe(addr), Lookup::Hit { .. }) {
        return;
    }
    if let Some(l3) = &mut shared.l3 {
        if let Lookup::Hit { ready_at } = l3.probe(addr) {
            let data = ready_at.max(now) + l3.latency_ticks;
            spill_l2_victim(l2.insert(addr, now, data, false), shared, now);
            return;
        }
    }
    let data = shared.dram.fill(now);
    if let Some(l3) = &mut shared.l3 {
        if l3.insert(addr, now, data, false).is_some() {
            shared.dram.writeback(now);
        }
    }
    spill_l2_victim(l2.insert(addr, now, data, false), shared, now);
}

/// Route a dirty L2 victim into L3 (or DRAM when absent).
fn spill_l2_victim(victim: Option<u64>, shared: &mut SharedMem, now: u64) {
    let Some(addr) = victim else { return };
    if let Some(l3) = &mut shared.l3 {
        if l3.mark_dirty(addr) {
            return;
        }
    }
    shared.dram.writeback(now);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineConfig, TICKS_PER_CYCLE};

    fn haswell_mem() -> (MemSys, SharedMem) {
        let cfg = MachineConfig::haswell();
        (MemSys::new(&cfg), SharedMem::new(&cfg))
    }

    #[test]
    fn cold_miss_pays_dram_latency() {
        let (mut m, mut sh) = haswell_mem();
        let lat = m.access(&mut sh, 0x10_0000, 0, AccessKind::Read, 1);
        assert!(
            lat >= 200 * TICKS_PER_CYCLE,
            "cold miss at least DRAM latency, got {lat}"
        );
        // TLB walk included (Haswell preset: 30-cycle walks).
        assert!(lat >= (200 + 30) * TICKS_PER_CYCLE);
    }

    #[test]
    fn second_access_hits_l1() {
        let (mut m, mut sh) = haswell_mem();
        let lat1 = m.access(&mut sh, 0x10_0000, 0, AccessKind::Read, 1);
        let t = lat1 + 10;
        let lat2 = m.access(&mut sh, 0x10_0000, t, AccessKind::Read, 1);
        assert_eq!(lat2, 4 * TICKS_PER_CYCLE, "L1 hit latency");
    }

    #[test]
    fn prefetch_then_demand_hits() {
        let (mut m, mut sh) = haswell_mem();
        m.prefetch(&mut sh, 0x20_0000, 0, 1);
        // Long after the fill completes: pure L1 hit.
        let lat = m.access(
            &mut sh,
            0x20_0000,
            (300 + 100) * TICKS_PER_CYCLE,
            AccessKind::Read,
            1,
        );
        assert_eq!(lat, 4 * TICKS_PER_CYCLE);
        assert_eq!(m.stats().sw_prefetches, 1);
    }

    #[test]
    fn late_prefetch_gives_partial_benefit() {
        let (mut m, mut sh) = haswell_mem();
        m.prefetch(&mut sh, 0x20_0000, 0, 1);
        // Demand arrives 50 cycles later; fill needs ~280. Must wait the
        // remainder, which is less than a full miss.
        let demand_at = 50 * TICKS_PER_CYCLE;
        let lat = m.access(&mut sh, 0x20_0000, demand_at, AccessKind::Read, 1);
        assert!(lat > 4 * TICKS_PER_CYCLE, "not a clean hit");
        assert!(
            lat < (200 + 80) * TICKS_PER_CYCLE,
            "but cheaper than a full miss: {lat}"
        );
        assert_eq!(m.stats().late_fill_hits, 1);
    }

    #[test]
    fn prefetch_queue_capacity_drops_excess() {
        let cfg = MachineConfig {
            prefetch_queue: 4,
            ..MachineConfig::haswell()
        };
        let mut m = MemSys::new(&cfg);
        let mut sh = SharedMem::new(&cfg);
        for i in 0..10u64 {
            m.prefetch(&mut sh, 0x100_0000 + i * 4096, 0, 1);
        }
        assert_eq!(m.stats().sw_prefetches, 10);
        assert_eq!(m.stats().sw_prefetches_dropped, 6);
    }

    #[test]
    fn redundant_prefetch_is_counted_not_refetched() {
        let (mut m, mut sh) = haswell_mem();
        m.prefetch(&mut sh, 0x30_0000, 0, 1);
        let reads_before = sh.dram.lines_read();
        m.prefetch(&mut sh, 0x30_0000, 1, 1);
        assert_eq!(sh.dram.lines_read(), reads_before);
        assert_eq!(m.stats().sw_prefetches_redundant(), 1);
    }

    #[test]
    fn stride_stream_gets_hardware_fills() {
        let (mut m, mut sh) = haswell_mem();
        let mut t = 0;
        // March through lines sequentially: L1 misses train the table.
        for i in 0..64u64 {
            let lat = m.access(&mut sh, 0x40_0000 + i * 64, t, AccessKind::Read, 42);
            t += lat + 8;
        }
        assert!(
            m.stats().hw_prefetch_fills > 10,
            "stride stream detected: {:?}",
            m.stats()
        );
        // Late in the stream, misses should be L2 hits (cheap), not DRAM.
        let lat = m.access(&mut sh, 0x40_0000 + 64 * 64, t, AccessKind::Read, 42);
        assert!(
            lat < 100 * TICKS_PER_CYCLE,
            "HW-prefetched line should be close: {lat}"
        );
    }

    #[test]
    fn writebacks_charged_for_dirty_evictions() {
        let (mut m, mut sh) = haswell_mem();
        // Write a stream larger than the whole hierarchy (L3 is 2 MiB)
        // so dirty lines are forced all the way out to DRAM.
        let mut t = 0;
        for i in 0..65_536u64 {
            let lat = m.access(&mut sh, 0x50_0000 + i * 64, t, AccessKind::Write, 7);
            t += lat;
        }
        assert!(
            sh.dram.lines_written() > 0,
            "dirty evictions must reach DRAM"
        );
    }

    #[test]
    fn small_dirty_working_set_stays_on_chip() {
        let (mut m, mut sh) = haswell_mem();
        // 1024 dirty lines (64 KiB) cycle between L1 and L2/L3 without
        // ever consuming DRAM write bandwidth.
        let mut t = 0;
        for round in 0..4u64 {
            for i in 0..1024u64 {
                let lat = m.access(&mut sh, 0x50_0000 + i * 64, t, AccessKind::Write, 7);
                t += lat + round;
            }
        }
        assert_eq!(
            sh.dram.lines_written(),
            0,
            "on-chip dirty data must not be written back"
        );
    }
}
