//! Set-associative caches with timed fills and LRU replacement.
//!
//! Each line records the tick at which its fill completes (`ready`), so a
//! demand access arriving before an in-flight prefetch completes pays the
//! *remaining* fill time — late prefetches give partial benefit, exactly
//! the Fig. 2 "offset too small" behaviour. Lines also track a dirty bit;
//! dirty evictions are reported so the DRAM model can charge write-back
//! bandwidth.

use crate::presets::CacheConfig;
use crate::LINE_BYTES;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Tick when the fill completes (0 for long-resident lines).
    ready: u64,
    /// Tick of last access, for LRU.
    last_use: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Present. `ready_at` is when the data is usable (may be in the
    /// future for an in-flight fill).
    Hit {
        /// Tick at which the line's data is available.
        ready_at: u64,
    },
    /// Absent.
    Miss,
}

/// A single cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    /// Hit latency in ticks.
    pub latency_ticks: u64,
    lines: Vec<Line>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache from its configuration (latency converted to ticks).
    #[must_use]
    pub fn new(cfg: &CacheConfig) -> Self {
        let lines_total = (cfg.capacity / LINE_BYTES).max(1) as usize;
        let ways = cfg.ways.max(1) as usize;
        let sets = (lines_total / ways).max(1);
        Cache {
            sets,
            ways,
            latency_ticks: cfg.latency * crate::TICKS_PER_CYCLE,
            lines: vec![Line::default(); sets * ways],
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / LINE_BYTES) as usize) % self.sets
    }

    fn tag_of(addr: u64) -> u64 {
        addr / LINE_BYTES
    }

    /// Look up `addr` at time `now`, updating LRU and the dirty bit on a
    /// hit. Does not allocate on miss — call [`Cache::insert`] once the
    /// fill time is known.
    pub fn access(&mut self, addr: u64, now: u64, is_write: bool) -> Lookup {
        let set = self.set_of(addr);
        let tag = Self::tag_of(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.last_use = now;
                line.dirty |= is_write;
                self.hits += 1;
                return Lookup::Hit {
                    ready_at: line.ready,
                };
            }
        }
        self.misses += 1;
        Lookup::Miss
    }

    /// Non-updating presence probe (used by prefetch paths so probes do
    /// not perturb LRU or hit statistics).
    #[must_use]
    pub fn probe(&self, addr: u64) -> Lookup {
        let set = self.set_of(addr);
        let tag = Self::tag_of(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            let line = &self.lines[base + way];
            if line.valid && line.tag == tag {
                return Lookup::Hit {
                    ready_at: line.ready,
                };
            }
        }
        Lookup::Miss
    }

    /// Install the line holding `addr`, becoming usable at `ready`.
    /// Returns the address of the evicted line when the victim was dirty
    /// (the caller must write it back to the next level down).
    pub fn insert(&mut self, addr: u64, now: u64, ready: u64, is_write: bool) -> Option<u64> {
        let set = self.set_of(addr);
        let tag = Self::tag_of(addr);
        let base = set * self.ways;
        // Reuse an invalid way or evict the LRU one.
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for way in 0..self.ways {
            let line = &self.lines[base + way];
            if !line.valid {
                victim = way;
                break;
            }
            if line.last_use < oldest {
                oldest = line.last_use;
                victim = way;
            }
        }
        let line = &mut self.lines[base + victim];
        let writeback = (line.valid && line.dirty).then_some(line.tag * LINE_BYTES);
        *line = Line {
            tag,
            valid: true,
            dirty: is_write,
            ready,
            last_use: now,
        };
        writeback
    }

    /// Mark the line holding `addr` dirty if present (a write-back from
    /// the level above landing in this cache). Returns `false` when the
    /// line is absent and the write-back must continue downwards.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = Self::tag_of(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Lifetime hit count.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(&CacheConfig {
            capacity: 512,
            ways: 2,
            latency: 4,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access(0x1000, 10, false), Lookup::Miss);
        c.insert(0x1000, 10, 50, false);
        assert_eq!(c.access(0x1000, 60, false), Lookup::Hit { ready_at: 50 });
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut c = small();
        c.insert(0x1000, 0, 0, false);
        assert!(matches!(c.access(0x103F, 1, false), Lookup::Hit { .. }));
        assert!(matches!(c.access(0x1040, 1, false), Lookup::Miss));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three lines mapping to the same set (set count 4 → stride 256B).
        let (a, b, d) = (0x0, 0x100, 0x200);
        c.insert(a, 1, 1, false);
        c.insert(b, 2, 2, false);
        c.access(a, 3, false); // refresh a
        c.insert(d, 4, 4, false); // must evict b
        assert!(matches!(c.access(a, 5, false), Lookup::Hit { .. }));
        assert!(matches!(c.access(b, 5, false), Lookup::Miss));
        assert!(matches!(c.access(d, 5, false), Lookup::Hit { .. }));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        let (a, b, d) = (0x0, 0x100, 0x200);
        c.insert(a, 1, 1, true); // dirty
        c.insert(b, 2, 2, false);
        let wb = c.insert(d, 3, 3, false); // evicts dirty a
        assert_eq!(wb, Some(a), "evicting the dirty line reports its address");
        let wb2 = c.insert(a, 4, 4, false); // evicts clean b
        assert_eq!(wb2, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.insert(0x0, 1, 1, false);
        c.access(0x0, 2, true); // write hit: dirtied
        c.insert(0x100, 3, 3, false);
        let wb = c.insert(0x200, 4, 4, false); // evicts 0x0
        assert_eq!(wb, Some(0x0));
    }

    #[test]
    fn probe_does_not_touch_lru_or_stats() {
        let mut c = small();
        c.insert(0x0, 1, 1, false);
        let h0 = c.hits();
        assert!(matches!(c.probe(0x0), Lookup::Hit { .. }));
        assert!(matches!(c.probe(0x40), Lookup::Miss));
        assert_eq!(c.hits(), h0);
    }
}
