//! Single-core machine: interpreter + core model + memory system.
//!
//! The interpreter is the pre-decoded engine behind
//! [`swpf_ir::interp::Interp`]: [`Machine::run`] decodes the module once
//! (inside `Interp::start`) and then executes the dense image, reporting
//! every retired instruction to the timing model through the
//! [`ExecObserver`] contract.
//!
//! Because the timing model consumes nothing but that event stream, a
//! machine can also be driven from a recorded [`Trace`] with no
//! interpreter in the loop at all ([`Machine::replay`]) — the replayed
//! [`SimStats`] are bit-identical to direct simulation. Recording
//! composes with timing via [`Machine::run_image_traced`], which tees
//! the events of a measured run into a [`StreamEncoder`].

use crate::cpu::Core;
use crate::memsys::{MemSys, SharedMem};
use crate::perf::PcProfile;
use crate::presets::MachineConfig;
use crate::stats::{SimRun, SimStats};
use std::sync::Arc;
use swpf_ir::exec::ExecImage;
use swpf_ir::interp::{Event, ExecObserver, Interp, RtVal, Tier, Trap};
use swpf_ir::{FuncId, Module};
use swpf_trace::{EventSource, FanOut, StreamEncoder, StreamingReplay, Tee, Trace, TraceError};

/// A single simulated core with its full memory hierarchy.
#[derive(Debug)]
pub struct Machine {
    /// The configuration the machine was built from.
    pub config: MachineConfig,
    core: Core,
    mem: MemSys,
    shared: SharedMem,
}

/// The one observer that wires retire events into a timing model —
/// every execution path (single-core direct, traced, replayed, and the
/// multicore interleaver) goes through this adapter.
pub(crate) struct TimingObserver<'a> {
    pub(crate) core: &'a mut Core,
    pub(crate) mem: &'a mut MemSys,
    pub(crate) shared: &'a mut SharedMem,
}

impl ExecObserver for TimingObserver<'_> {
    fn on_event(&mut self, ev: &Event<'_>) {
        self.core.retire(
            self.mem,
            self.shared,
            ev.kind,
            ev.frame,
            ev.result.0,
            ev.operands,
            ev.pc,
        );
    }
}

impl Machine {
    /// Build a machine from a configuration.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        let core = Core::new(&config);
        let mem = MemSys::new(&config);
        let shared = SharedMem::new(&config);
        Machine {
            config,
            core,
            mem,
            shared,
        }
    }

    /// The timing observer over this machine's core and memory system —
    /// the single observer-wiring path every run/replay flavour uses.
    pub(crate) fn observer(&mut self) -> TimingObserver<'_> {
        TimingObserver {
            core: &mut self.core,
            mem: &mut self.mem,
            shared: &mut self.shared,
        }
    }

    /// Run `func` to completion on this machine, using `interp` for
    /// architectural state (set up its memory before calling).
    ///
    /// # Errors
    /// Any [`Trap`] the program raises.
    pub fn run(
        &mut self,
        module: &Module,
        func: FuncId,
        interp: &mut Interp,
        args: &[RtVal],
    ) -> Result<SimStats, Trap> {
        let mut obs = self.observer();
        interp.run(module, func, args, &mut obs)?;
        Ok(self.stats())
    }

    /// Like [`Machine::run`], but from an already-decoded [`ExecImage`] —
    /// the amortised shape for experiment grids that run one module on
    /// many machine configurations.
    ///
    /// # Errors
    /// Any [`Trap`] the program raises.
    pub fn run_image(
        &mut self,
        image: Arc<ExecImage>,
        func: FuncId,
        interp: &mut Interp,
        args: &[RtVal],
    ) -> Result<SimStats, Trap> {
        let mut obs = self.observer();
        interp.run_with_image(image, func, args, &mut obs)?;
        Ok(self.stats())
    }

    /// Like [`Machine::run_image`], but additionally records the
    /// retire-event stream into `enc` while the timing model measures
    /// it — the record-while-measuring shape the experiment harness
    /// uses for a grid's first machine cell. The measured [`SimStats`]
    /// are identical to an untraced run.
    ///
    /// Single-core replay never consults step boundaries (they exist to
    /// reproduce the multicore interleaver's schedule), so this rides
    /// the engine's fast `run_to_done` loop with a [`Tee`] rather than
    /// the step-driven [`record_cursor`] the multicore recorder needs.
    ///
    /// # Errors
    /// Any [`Trap`] the program raises.
    pub fn run_image_traced(
        &mut self,
        image: Arc<ExecImage>,
        func: FuncId,
        interp: &mut Interp,
        args: &[RtVal],
        enc: &mut StreamEncoder,
    ) -> Result<SimStats, Trap> {
        let mut obs = self.observer();
        let mut tee = Tee(enc, &mut obs);
        interp.run_with_image(image, func, args, &mut tee)?;
        Ok(self.stats())
    }

    /// Feed core 0 of a recorded [`Trace`] straight into this machine's
    /// timing model — no interpreter, no simulated memory, just the
    /// event stream. Bit-identical to the direct simulation the trace
    /// was recorded from (the replay equivalence contract; enforced by
    /// tests and the CI `trace-equivalence` job).
    ///
    /// # Errors
    /// Any [`TraceError`] in the encoded stream.
    pub fn replay(&mut self, trace: &Trace) -> Result<SimStats, TraceError> {
        self.replay_from(&mut trace.cursor(0)?)
    }

    /// Like [`Machine::replay`], but from any [`EventSource`] — the
    /// generic entry the streaming (block-at-a-time, bounded-memory)
    /// replay path shares with the in-memory cursor.
    ///
    /// # Errors
    /// Any [`TraceError`] the source reports.
    pub fn replay_from(&mut self, src: &mut impl EventSource) -> Result<SimStats, TraceError> {
        let mut obs = self.observer();
        while let Some((ev, _)) = src.next_event()? {
            obs.on_event(&ev);
        }
        Ok(self.stats())
    }

    /// Snapshot the statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        MachineStatsParts {
            core: &self.core,
            mem: &self.mem,
            shared: &self.shared,
        }
        .collect()
    }

    /// Finish per-PC profiling (classifying still-cached prefetched
    /// lines as `unused_at_end`) and hand the profile over. `None`
    /// unless [`crate::perf::enabled`] was set when the machine was
    /// built.
    pub fn take_perf(&mut self) -> Option<PcProfile> {
        self.mem.take_perf()
    }

    /// Stats plus the (possibly absent) per-PC profile, consumed
    /// together — the shape the `*_perf` entry points return.
    pub fn finish(&mut self) -> SimRun {
        SimRun {
            stats: self.stats(),
            perf: self.take_perf(),
        }
    }
}

/// Borrowed views over the three stat sources; lets the multicore runner
/// assemble [`SimStats`] from its own storage layout.
pub(crate) struct MachineStatsParts<'a> {
    pub core: &'a Core,
    pub mem: &'a MemSys,
    pub shared: &'a SharedMem,
}

impl MachineStatsParts<'_> {
    pub(crate) fn collect(&self) -> SimStats {
        let (l1_hits, l1_misses, l2_hits, l2_misses) = self.mem.cache_counters();
        let (tlb_hits, tlb_misses) = self.mem.tlb_counters();
        SimStats {
            cycles: self.core.cycles(),
            insts: self.core.counts(),
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            tlb_hits,
            tlb_misses,
            dram_lines_read: self.shared.dram.lines_read(),
            dram_lines_written: self.shared.dram.lines_written(),
            mem: self.mem.stats(),
        }
    }
}

/// Shared glue of every `run_on_machine*` convenience: build a fresh
/// interpreter, let `setup` allocate and initialise workload memory
/// (returning the kernel arguments), build a machine, and treat traps
/// as fatal configuration errors.
fn run_fresh(
    config: &MachineConfig,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
    body: impl FnOnce(&mut Machine, &mut Interp, &[RtVal]) -> Result<SimStats, Trap>,
) -> SimStats {
    let mut interp = Interp::new();
    let args = setup(&mut interp);
    let mut machine = Machine::new(config.clone());
    body(&mut machine, &mut interp, &args).unwrap_or_else(|t| panic!("simulation trapped: {t}"))
}

/// Convenience: build an interpreter, let `setup` allocate and initialise
/// workload memory (returning the kernel arguments), then simulate
/// `func_name` on `config`.
///
/// # Panics
/// If the function does not exist or the program traps — harness code
/// treats both as fatal configuration errors.
pub fn run_on_machine(
    config: &MachineConfig,
    module: &Module,
    func_name: &str,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
) -> SimStats {
    let func = module
        .find_function(func_name)
        .unwrap_or_else(|| panic!("no function `{func_name}` in module"));
    run_fresh(config, setup, |machine, interp, args| {
        machine.run(module, func, interp, args)
    })
}

/// Like [`run_on_machine`], from an already-decoded image (decode once,
/// simulate on many machine configurations — the experiment-harness
/// path). `func` must belong to the module `image` was built from.
///
/// # Panics
/// If the program traps — harness code treats that as a fatal
/// configuration error.
pub fn run_on_machine_image(
    config: &MachineConfig,
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
) -> SimStats {
    run_fresh(config, setup, |machine, interp, args| {
        machine.run_image(Arc::clone(image), func, interp, args)
    })
}

/// Like [`run_on_machine_image`], returning the per-PC profile
/// alongside the stats (see [`crate::perf`]; the profile is `None`
/// unless profiling is enabled).
///
/// # Panics
/// If the program traps — harness code treats that as a fatal
/// configuration error.
pub fn run_on_machine_image_perf(
    config: &MachineConfig,
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
) -> SimRun {
    let mut interp = Interp::new();
    let args = setup(&mut interp);
    let mut machine = Machine::new(config.clone());
    machine
        .run_image(Arc::clone(image), func, &mut interp, &args)
        .unwrap_or_else(|t| panic!("simulation trapped: {t}"));
    machine.finish()
}

/// Like [`run_on_machine_image`], but on an explicit execution [`Tier`]
/// instead of the `SWPF_TIER` environment default — the shape the
/// differential suites use to compare tiers side by side without racing
/// on process-global environment state.
///
/// # Panics
/// If the program traps — harness code treats that as a fatal
/// configuration error.
pub fn run_on_machine_image_tier(
    config: &MachineConfig,
    image: &Arc<ExecImage>,
    func: FuncId,
    tier: Tier,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
) -> SimStats {
    let mut interp = Interp::with_tier(tier);
    let args = setup(&mut interp);
    let mut machine = Machine::new(config.clone());
    machine
        .run_image(Arc::clone(image), func, &mut interp, &args)
        .unwrap_or_else(|t| panic!("simulation trapped: {t}"))
}

/// Like [`run_on_machine_image_tier`], returning the per-PC profile
/// alongside the stats — the shape the profiling differential suite
/// uses to compare the profile itself across execution tiers.
///
/// # Panics
/// If the program traps — harness code treats that as a fatal
/// configuration error.
pub fn run_on_machine_image_tier_perf(
    config: &MachineConfig,
    image: &Arc<ExecImage>,
    func: FuncId,
    tier: Tier,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
) -> SimRun {
    let mut interp = Interp::with_tier(tier);
    let args = setup(&mut interp);
    let mut machine = Machine::new(config.clone());
    machine
        .run_image(Arc::clone(image), func, &mut interp, &args)
        .unwrap_or_else(|t| panic!("simulation trapped: {t}"));
    machine.finish()
}

/// Like [`run_on_machine_image`], but records the retire-event stream
/// into `enc` while measuring (see [`Machine::run_image_traced`]).
///
/// # Panics
/// If the program traps — harness code treats that as a fatal
/// configuration error.
pub fn run_on_machine_traced(
    config: &MachineConfig,
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
    enc: &mut StreamEncoder,
) -> SimStats {
    run_on_machine_traced_perf(config, image, func, setup, enc).stats
}

/// Like [`run_on_machine_traced`], returning the per-PC profile
/// alongside the stats.
///
/// # Panics
/// If the program traps — harness code treats that as a fatal
/// configuration error.
pub fn run_on_machine_traced_perf(
    config: &MachineConfig,
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
    enc: &mut StreamEncoder,
) -> SimRun {
    let mut interp = Interp::new();
    let args = setup(&mut interp);
    let mut machine = Machine::new(config.clone());
    machine
        .run_image_traced(Arc::clone(image), func, &mut interp, &args, enc)
        .unwrap_or_else(|t| panic!("simulation trapped: {t}"));
    machine.finish()
}

/// Replay a single-core trace on `config` (see [`Machine::replay`]).
///
/// # Panics
/// On a malformed trace — harness code treats that as a fatal cache
/// error.
pub fn replay_on_machine(config: &MachineConfig, trace: &Trace) -> SimStats {
    replay_on_machine_perf(config, trace).stats
}

/// Like [`replay_on_machine`], returning the per-PC profile alongside
/// the stats.
///
/// # Panics
/// On a malformed trace — harness code treats that as a fatal cache
/// error.
pub fn replay_on_machine_perf(config: &MachineConfig, trace: &Trace) -> SimRun {
    let mut machine = Machine::new(config.clone());
    machine
        .replay(trace)
        .unwrap_or_else(|e| panic!("trace replay failed: {e}"));
    machine.finish()
}

/// Simulate one functional execution on every machine of a grid row at
/// once: the engine's event stream fans out to each machine's timing
/// observer — and, when `enc` is given, to a trace encoder — so N
/// cells pay for one interpretation. Each machine's [`SimStats`] are
/// bit-identical to a dedicated run (events are observer-independent).
///
/// # Panics
/// If the program traps — harness code treats that as a fatal
/// configuration error.
pub fn run_on_machines_image(
    configs: &[&MachineConfig],
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
    enc: Option<&mut StreamEncoder>,
) -> Vec<SimStats> {
    run_on_machines_image_perf(configs, image, func, setup, enc)
        .into_iter()
        .map(|r| r.stats)
        .collect()
}

/// Like [`run_on_machines_image`], returning each machine's per-PC
/// profile alongside its stats (see [`crate::perf`]; the profile is
/// `None` unless profiling is enabled).
///
/// # Panics
/// If the program traps — harness code treats that as a fatal
/// configuration error.
pub fn run_on_machines_image_perf(
    configs: &[&MachineConfig],
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
    enc: Option<&mut StreamEncoder>,
) -> Vec<SimRun> {
    let mut interp = Interp::new();
    let args = setup(&mut interp);
    let mut machines: Vec<Machine> = configs.iter().map(|c| Machine::new((*c).clone())).collect();
    {
        let mut timing: Vec<TimingObserver<'_>> =
            machines.iter_mut().map(Machine::observer).collect();
        let mut receivers: Vec<&mut dyn ExecObserver> = Vec::with_capacity(timing.len() + 1);
        if let Some(enc) = enc {
            receivers.push(enc);
        }
        receivers.extend(timing.iter_mut().map(|o| o as &mut dyn ExecObserver));
        let mut fan = FanOut(receivers);
        interp
            .run_with_image(Arc::clone(image), func, &args, &mut fan)
            .unwrap_or_else(|t| panic!("simulation trapped: {t}"));
    }
    machines.iter_mut().map(Machine::finish).collect()
}

/// Candidate-evaluation entry point for search-driven tuning
/// (`swpf-tune`): decode `module` once, interpret `func_name` once, and
/// fan the retire-event stream out to every machine of `configs`
/// simultaneously — so evaluating one candidate kernel on an N-machine
/// grid costs one interpretation, not N. Statistics are bit-identical
/// to N dedicated [`run_on_machine`] calls.
///
/// # Panics
/// If the function does not exist or the program traps — callers treat
/// both as fatal configuration errors.
pub fn run_module_on_machines(
    configs: &[&MachineConfig],
    module: &Module,
    func_name: &str,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
) -> Vec<SimStats> {
    let func = module
        .find_function(func_name)
        .unwrap_or_else(|| panic!("no function `{func_name}` in module"));
    let image = Arc::new(ExecImage::build(module));
    run_on_machines_image(configs, &image, func, setup, None)
}

/// Replay a single-core trace on every machine of a grid row at once:
/// the trace is decoded (and its payload streamed through the host
/// caches) a single time, with each event fanned out to all timing
/// models — the batched warm-cache shape of the experiment harness.
///
/// # Errors
/// Any [`TraceError`] in the encoded stream.
pub fn replay_on_machines(
    configs: &[&MachineConfig],
    trace: &Trace,
) -> Result<Vec<SimStats>, TraceError> {
    Ok(replay_on_machines_perf(configs, trace)?
        .into_iter()
        .map(|r| r.stats)
        .collect())
}

/// Like [`replay_on_machines`], returning each machine's per-PC profile
/// alongside its stats. Replay drives the identical observer path, so a
/// profile mined from a trace matches the direct run's exactly.
///
/// # Errors
/// Any [`TraceError`] in the encoded stream.
pub fn replay_on_machines_perf(
    configs: &[&MachineConfig],
    trace: &Trace,
) -> Result<Vec<SimRun>, TraceError> {
    replay_on_machines_from(configs, &mut trace.cursor(0)?)
}

/// The [`EventSource`]-generic core of batched replay: one decode pass,
/// every event fanned out to all timing models.
fn replay_on_machines_from(
    configs: &[&MachineConfig],
    src: &mut impl EventSource,
) -> Result<Vec<SimRun>, TraceError> {
    let mut machines: Vec<Machine> = configs.iter().map(|c| Machine::new((*c).clone())).collect();
    while let Some((ev, _)) = src.next_event()? {
        for m in &mut machines {
            m.observer().on_event(&ev);
        }
    }
    Ok(machines.iter_mut().map(Machine::finish).collect())
}

/// Replay a single-core trace **file** on `config` without ever
/// materialising the payload: events stream block-by-block from the v2
/// envelope (see [`StreamingReplay`]), so peak memory is bounded by the
/// block window no matter how long the trace is. Statistics are
/// bit-identical to [`replay_on_machine`] on the decoded trace.
///
/// # Errors
/// Any [`TraceError`] in the file — envelope violations, per-block
/// checksum mismatches, or I/O failures.
pub fn streaming_replay_on_machine(
    config: &MachineConfig,
    replay: &StreamingReplay,
) -> Result<SimStats, TraceError> {
    Ok(streaming_replay_on_machine_perf(config, replay)?.stats)
}

/// Like [`streaming_replay_on_machine`], returning the per-PC profile
/// alongside the stats.
///
/// # Errors
/// Any [`TraceError`] in the file.
pub fn streaming_replay_on_machine_perf(
    config: &MachineConfig,
    replay: &StreamingReplay,
) -> Result<SimRun, TraceError> {
    let mut machine = Machine::new(config.clone());
    machine.replay_from(&mut replay.cursor(0)?)?;
    Ok(machine.finish())
}

/// Batched streaming replay: one block-at-a-time decode pass over the
/// trace file drives every machine of a grid row (the warm-cache shape
/// of the experiment harness, now with bounded memory — see
/// [`replay_on_machines`] and [`StreamingReplay`]).
///
/// # Errors
/// Any [`TraceError`] in the file.
pub fn streaming_replay_on_machines(
    configs: &[&MachineConfig],
    replay: &StreamingReplay,
) -> Result<Vec<SimStats>, TraceError> {
    Ok(streaming_replay_on_machines_perf(configs, replay)?
        .into_iter()
        .map(|r| r.stats)
        .collect())
}

/// Like [`streaming_replay_on_machines`], returning each machine's
/// per-PC profile alongside its stats.
///
/// # Errors
/// Any [`TraceError`] in the file.
pub fn streaming_replay_on_machines_perf(
    configs: &[&MachineConfig],
    replay: &StreamingReplay,
) -> Result<Vec<SimRun>, TraceError> {
    replay_on_machines_from(configs, &mut replay.cursor(0)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::prelude::*;

    /// Write `bytes` to a unique temp file, run `f` on the path, clean up.
    fn with_temp_trace<R>(name: &str, bytes: &[u8], f: impl FnOnce(&std::path::Path) -> R) -> R {
        let path =
            std::env::temp_dir().join(format!("swpf_sim_{}_{name}.trace", std::process::id()));
        std::fs::write(&path, bytes).expect("trace written");
        let r = f(&path);
        std::fs::remove_file(&path).ok();
        r
    }

    /// Sequential-sum kernel over `n` i64 elements.
    fn stream_kernel() -> Module {
        let mut m = Module::new("t");
        let fid = m.declare_function("sum", &[Type::Ptr, Type::I64], Type::I64);
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, n) = (b.arg(0), b.arg(1));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let acc = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let g = b.gep(a, i, 8);
        let v = b.load(Type::I64, g);
        let acc2 = b.add(acc, v);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(acc));
        let _ = b;
        m
    }

    #[test]
    fn runs_and_produces_sane_stats() {
        let m = stream_kernel();
        let stats = run_on_machine(&MachineConfig::haswell(), &m, "sum", |interp| {
            let n = 4096u64;
            let a = interp.alloc_array(n, 8).unwrap();
            for i in 0..n {
                interp.mem().write(a + i * 8, 8, 1).unwrap();
            }
            vec![RtVal::Int(a as i64), RtVal::Int(n as i64)]
        });
        assert!(stats.cycles > 0);
        assert!(stats.insts.total > 4096 * 5);
        assert!(stats.insts.loads >= 4096);
        assert!(stats.l1_hits > stats.l1_misses, "stream mostly hits in L1");
        assert!(stats.ipc() > 0.1);
    }

    /// The replay equivalence contract at machine level: a run recorded
    /// while measuring produces the same stats as an untraced run, and
    /// replaying the trace (round-tripped through the binary envelope)
    /// on a fresh machine reproduces every counter bit-for-bit — on
    /// both core models.
    #[test]
    fn replay_is_bit_identical_to_direct() {
        let m = stream_kernel();
        let f = m.find_function("sum").unwrap();
        let image = Arc::new(ExecImage::build(&m));
        let setup = |interp: &mut Interp| {
            let n = 8192u64;
            let a = interp.alloc_array(n, 8).unwrap();
            for i in 0..n {
                interp.mem().write(a + i * 8, 8, i % 7).unwrap();
            }
            vec![RtVal::Int(a as i64), RtVal::Int(n as i64)]
        };
        for cfg in [MachineConfig::haswell(), MachineConfig::a53()] {
            let direct = run_on_machine_image(&cfg, &image, f, setup);
            let mut rec = swpf_trace::TraceRecorder::new(1, 42);
            let traced = run_on_machine_traced(&cfg, &image, f, setup, rec.stream(0));
            let bytes = rec.finish().to_bytes();
            let trace = Trace::from_bytes(&bytes).unwrap();
            let replayed = replay_on_machine(&cfg, &trace);
            assert_eq!(
                direct.counters(),
                traced.counters(),
                "recording must not perturb timing on {}",
                cfg.name
            );
            assert_eq!(
                direct.counters(),
                replayed.counters(),
                "replay must be bit-identical on {}",
                cfg.name
            );
            assert_eq!(trace.events(0), direct.insts.total);
            // The bounded-memory path decodes the same file to the same
            // counters, without ever materialising the payload.
            let streamed = with_temp_trace(&format!("single_{}", cfg.name), &bytes, |path| {
                let replay = StreamingReplay::open(path).expect("streaming open");
                streaming_replay_on_machine(&cfg, &replay).expect("streaming replay")
            });
            assert_eq!(
                direct.counters(),
                streamed.counters(),
                "streaming replay must be bit-identical on {}",
                cfg.name
            );
        }
    }

    /// Batched execution and batched replay: one interpretation (or one
    /// decode pass) driving several machines produces exactly the stats
    /// of dedicated per-machine runs.
    #[test]
    fn fanout_runs_match_dedicated_runs() {
        let m = stream_kernel();
        let f = m.find_function("sum").unwrap();
        let image = Arc::new(ExecImage::build(&m));
        let setup = |interp: &mut Interp| {
            let n = 4096u64;
            let a = interp.alloc_array(n, 8).unwrap();
            for i in 0..n {
                interp.mem().write(a + i * 8, 8, i % 5).unwrap();
            }
            vec![RtVal::Int(a as i64), RtVal::Int(n as i64)]
        };
        let cfgs = [
            MachineConfig::haswell(),
            MachineConfig::a53(),
            MachineConfig::xeon_phi(),
        ];
        let refs: Vec<&MachineConfig> = cfgs.iter().collect();
        let dedicated: Vec<SimStats> = cfgs
            .iter()
            .map(|c| run_on_machine_image(c, &image, f, setup))
            .collect();

        let mut rec = swpf_trace::TraceRecorder::new(1, 0);
        let fanned = run_on_machines_image(&refs, &image, f, setup, Some(rec.stream(0)));
        let trace = rec.finish();
        let batched = replay_on_machines(&refs, &trace).unwrap();
        let streamed = with_temp_trace("fanout", &trace.to_bytes(), |path| {
            let replay = StreamingReplay::open(path).expect("streaming open");
            streaming_replay_on_machines(&refs, &replay).expect("streaming replay")
        });
        for (((d, fo), b), s) in dedicated.iter().zip(&fanned).zip(&batched).zip(&streamed) {
            assert_eq!(d.counters(), fo.counters(), "fan-out must match dedicated");
            assert_eq!(d.counters(), b.counters(), "batched replay must match");
            assert_eq!(d.counters(), s.counters(), "streaming replay must match");
        }
    }

    #[test]
    fn hw_prefetcher_speeds_up_streams() {
        let m = stream_kernel();
        let setup = |interp: &mut Interp| {
            let n = 16384u64;
            let a = interp.alloc_array(n, 8).unwrap();
            vec![RtVal::Int(a as i64), RtVal::Int(n as i64)]
        };
        let with = run_on_machine(&MachineConfig::a53(), &m, "sum", setup);
        let without = run_on_machine(
            &MachineConfig::a53().without_hw_prefetcher(),
            &m,
            "sum",
            setup,
        );
        assert!(
            without.cycles > with.cycles,
            "stride prefetcher must help a stream: {} vs {}",
            without.cycles,
            with.cycles
        );
    }

    #[test]
    fn in_order_slower_than_out_of_order_on_same_machine() {
        // Same caches/DRAM, only the pipeline differs: on a stream whose
        // leading-edge misses stall the in-order core, the out-of-order
        // core must win.
        let m = stream_kernel();
        let setup = |interp: &mut Interp| {
            let n = 32768u64;
            let a = interp.alloc_array(n, 8).unwrap();
            vec![RtVal::Int(a as i64), RtVal::Int(n as i64)]
        };
        let ooo_cfg = MachineConfig::haswell().without_hw_prefetcher();
        let ino_cfg = MachineConfig {
            core: crate::presets::CoreKind::InOrder,
            ..ooo_cfg.clone()
        };
        let ooo = run_on_machine(&ooo_cfg, &m, "sum", setup);
        let ino = run_on_machine(&ino_cfg, &m, "sum", setup);
        assert!(
            ino.cycles > ooo.cycles,
            "in-order {} must trail out-of-order {}",
            ino.cycles,
            ooo.cycles
        );
    }
}
