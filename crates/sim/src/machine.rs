//! Single-core machine: interpreter + core model + memory system.
//!
//! The interpreter is the pre-decoded engine behind
//! [`swpf_ir::interp::Interp`]: [`Machine::run`] decodes the module once
//! (inside `Interp::start`) and then executes the dense image, reporting
//! every retired instruction to the timing model through the
//! [`ExecObserver`] contract.

use crate::cpu::Core;
use crate::memsys::{MemSys, SharedMem};
use crate::presets::MachineConfig;
use crate::stats::SimStats;
use std::sync::Arc;
use swpf_ir::exec::ExecImage;
use swpf_ir::interp::{Event, ExecObserver, Interp, RtVal, Trap};
use swpf_ir::{FuncId, Module};

/// A single simulated core with its full memory hierarchy.
#[derive(Debug)]
pub struct Machine {
    /// The configuration the machine was built from.
    pub config: MachineConfig,
    core: Core,
    mem: MemSys,
    shared: SharedMem,
}

struct TimingObserver<'a> {
    core: &'a mut Core,
    mem: &'a mut MemSys,
    shared: &'a mut SharedMem,
}

impl ExecObserver for TimingObserver<'_> {
    fn on_event(&mut self, ev: &Event<'_>) {
        self.core.retire(
            self.mem,
            self.shared,
            ev.kind,
            ev.frame,
            ev.result.0,
            ev.operands,
            ev.pc,
        );
    }
}

impl Machine {
    /// Build a machine from a configuration.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        let core = Core::new(&config);
        let mem = MemSys::new(&config);
        let shared = SharedMem::new(&config);
        Machine {
            config,
            core,
            mem,
            shared,
        }
    }

    /// Run `func` to completion on this machine, using `interp` for
    /// architectural state (set up its memory before calling).
    ///
    /// # Errors
    /// Any [`Trap`] the program raises.
    pub fn run(
        &mut self,
        module: &Module,
        func: FuncId,
        interp: &mut Interp,
        args: &[RtVal],
    ) -> Result<SimStats, Trap> {
        let mut obs = TimingObserver {
            core: &mut self.core,
            mem: &mut self.mem,
            shared: &mut self.shared,
        };
        interp.run(module, func, args, &mut obs)?;
        Ok(self.stats())
    }

    /// Like [`Machine::run`], but from an already-decoded [`ExecImage`] —
    /// the amortised shape for experiment grids that run one module on
    /// many machine configurations.
    ///
    /// # Errors
    /// Any [`Trap`] the program raises.
    pub fn run_image(
        &mut self,
        image: Arc<ExecImage>,
        func: FuncId,
        interp: &mut Interp,
        args: &[RtVal],
    ) -> Result<SimStats, Trap> {
        let mut obs = TimingObserver {
            core: &mut self.core,
            mem: &mut self.mem,
            shared: &mut self.shared,
        };
        interp.run_with_image(image, func, args, &mut obs)?;
        Ok(self.stats())
    }

    /// Snapshot the statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        MachineStatsParts {
            core: &self.core,
            mem: &self.mem,
            shared: &self.shared,
        }
        .collect()
    }
}

/// Borrowed views over the three stat sources; lets the multicore runner
/// assemble [`SimStats`] from its own storage layout.
pub(crate) struct MachineStatsParts<'a> {
    pub core: &'a Core,
    pub mem: &'a MemSys,
    pub shared: &'a SharedMem,
}

impl MachineStatsParts<'_> {
    pub(crate) fn collect(&self) -> SimStats {
        let (l1_hits, l1_misses, l2_hits, l2_misses) = self.mem.cache_counters();
        let (tlb_hits, tlb_misses) = self.mem.tlb_counters();
        SimStats {
            cycles: self.core.cycles(),
            insts: self.core.counts(),
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            tlb_hits,
            tlb_misses,
            dram_lines_read: self.shared.dram.lines_read(),
            dram_lines_written: self.shared.dram.lines_written(),
            mem: self.mem.stats(),
        }
    }
}

/// Convenience: build an interpreter, let `setup` allocate and initialise
/// workload memory (returning the kernel arguments), then simulate
/// `func_name` on `config`.
///
/// # Panics
/// If the function does not exist or the program traps — harness code
/// treats both as fatal configuration errors.
pub fn run_on_machine(
    config: &MachineConfig,
    module: &Module,
    func_name: &str,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
) -> SimStats {
    let func = module
        .find_function(func_name)
        .unwrap_or_else(|| panic!("no function `{func_name}` in module"));
    let mut interp = Interp::new();
    let args = setup(&mut interp);
    let mut machine = Machine::new(config.clone());
    machine
        .run(module, func, &mut interp, &args)
        .unwrap_or_else(|t| panic!("simulation trapped: {t}"))
}

/// Like [`run_on_machine`], from an already-decoded image (decode once,
/// simulate on many machine configurations — the experiment-harness
/// path). `func` must belong to the module `image` was built from.
///
/// # Panics
/// If the program traps — harness code treats that as a fatal
/// configuration error.
pub fn run_on_machine_image(
    config: &MachineConfig,
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnOnce(&mut Interp) -> Vec<RtVal>,
) -> SimStats {
    let mut interp = Interp::new();
    let args = setup(&mut interp);
    let mut machine = Machine::new(config.clone());
    machine
        .run_image(Arc::clone(image), func, &mut interp, &args)
        .unwrap_or_else(|t| panic!("simulation trapped: {t}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::prelude::*;

    /// Sequential-sum kernel over `n` i64 elements.
    fn stream_kernel() -> Module {
        let mut m = Module::new("t");
        let fid = m.declare_function("sum", &[Type::Ptr, Type::I64], Type::I64);
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, n) = (b.arg(0), b.arg(1));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let acc = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let g = b.gep(a, i, 8);
        let v = b.load(Type::I64, g);
        let acc2 = b.add(acc, v);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(acc));
        let _ = b;
        m
    }

    #[test]
    fn runs_and_produces_sane_stats() {
        let m = stream_kernel();
        let stats = run_on_machine(&MachineConfig::haswell(), &m, "sum", |interp| {
            let n = 4096u64;
            let a = interp.alloc_array(n, 8).unwrap();
            for i in 0..n {
                interp.mem().write(a + i * 8, 8, 1).unwrap();
            }
            vec![RtVal::Int(a as i64), RtVal::Int(n as i64)]
        });
        assert!(stats.cycles > 0);
        assert!(stats.insts.total > 4096 * 5);
        assert!(stats.insts.loads >= 4096);
        assert!(stats.l1_hits > stats.l1_misses, "stream mostly hits in L1");
        assert!(stats.ipc() > 0.1);
    }

    #[test]
    fn hw_prefetcher_speeds_up_streams() {
        let m = stream_kernel();
        let setup = |interp: &mut Interp| {
            let n = 16384u64;
            let a = interp.alloc_array(n, 8).unwrap();
            vec![RtVal::Int(a as i64), RtVal::Int(n as i64)]
        };
        let with = run_on_machine(&MachineConfig::a53(), &m, "sum", setup);
        let without = run_on_machine(
            &MachineConfig::a53().without_hw_prefetcher(),
            &m,
            "sum",
            setup,
        );
        assert!(
            without.cycles > with.cycles,
            "stride prefetcher must help a stream: {} vs {}",
            without.cycles,
            with.cycles
        );
    }

    #[test]
    fn in_order_slower_than_out_of_order_on_same_machine() {
        // Same caches/DRAM, only the pipeline differs: on a stream whose
        // leading-edge misses stall the in-order core, the out-of-order
        // core must win.
        let m = stream_kernel();
        let setup = |interp: &mut Interp| {
            let n = 32768u64;
            let a = interp.alloc_array(n, 8).unwrap();
            vec![RtVal::Int(a as i64), RtVal::Int(n as i64)]
        };
        let ooo_cfg = MachineConfig::haswell().without_hw_prefetcher();
        let ino_cfg = MachineConfig {
            core: crate::presets::CoreKind::InOrder,
            ..ooo_cfg.clone()
        };
        let ooo = run_on_machine(&ooo_cfg, &m, "sum", setup);
        let ino = run_on_machine(&ino_cfg, &m, "sum", setup);
        assert!(
            ino.cycles > ooo.cycles,
            "in-order {} must trail out-of-order {}",
            ino.cycles,
            ooo.cycles
        );
    }
}
