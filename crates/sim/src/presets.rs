//! Machine configurations, including the four systems of Table 1.
//!
//! Cache capacities are scaled to one quarter of the real parts' (and the
//! workloads in `swpf-workloads` are scaled with them), keeping every
//! ratio the paper's analysis depends on: indirect targets exceed the
//! LLC, CG's dense vector fits in L2, and the small Graph500 input is
//! partially cache-resident while the large one is not.

use crate::TICKS_PER_CYCLE;

/// Whether the core issues in program order or by dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// Stall-on-miss in-order pipeline (Cortex-A53, Xeon Phi).
    InOrder,
    /// Out-of-order with a reorder buffer and limited MSHRs
    /// (Haswell, Cortex-A57).
    OutOfOrder,
}

/// One cache level's geometry and hit latency.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency in cycles.
    pub latency: u64,
}

/// TLB geometry and page-walk behaviour.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: u32,
    /// log2 of the page size (12 = 4 KiB, 21 = 2 MiB huge pages).
    pub page_bits: u32,
    /// Concurrent page-table walks supported. The Cortex-A57 supports
    /// one; Haswell two (paper §6.1).
    pub walkers: u32,
    /// Page-walk latency in cycles.
    pub walk_latency: u64,
}

/// DRAM timing.
#[derive(Debug, Clone, Copy)]
pub struct DramConfig {
    /// Idle load-to-use latency in cycles.
    pub latency: u64,
    /// Sustained bandwidth in bytes per cycle (per memory controller,
    /// shared by all cores in multicore runs).
    pub bytes_per_cycle: u64,
}

/// A complete machine model.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Display name ("haswell", "a53", ...).
    pub name: &'static str,
    /// Pipeline style.
    pub core: CoreKind,
    /// Issue width (instructions per cycle).
    pub width: u32,
    /// Reorder-buffer capacity (out-of-order only).
    pub rob: usize,
    /// Maximum outstanding demand misses (out-of-order only).
    pub mshrs: usize,
    /// Maximum outstanding software-prefetch fills; further prefetches
    /// are dropped, as on real hardware. Sized near the DRAM
    /// bandwidth-delay product (latency × bandwidth / line size) so the
    /// queue itself is not the steady-state bottleneck.
    pub prefetch_queue: usize,
    /// First-level cache.
    pub l1: CacheConfig,
    /// Second-level cache.
    pub l2: CacheConfig,
    /// Optional last-level cache.
    pub l3: Option<CacheConfig>,
    /// TLB and page-walk configuration.
    pub tlb: TlbConfig,
    /// Memory system.
    pub dram: DramConfig,
    /// Whether the hardware stride prefetcher is enabled (all four
    /// evaluated systems have one).
    pub hw_stride_prefetcher: bool,
}

impl MachineConfig {
    /// Intel Core i5-4570 "Haswell": 4-wide out-of-order, three cache
    /// levels, two page walkers, transparent huge pages available
    /// (enable with [`MachineConfig::with_huge_pages`]).
    #[must_use]
    pub fn haswell() -> Self {
        MachineConfig {
            name: "haswell",
            core: CoreKind::OutOfOrder,
            width: 4,
            rob: 192,
            mshrs: 10,
            prefetch_queue: 32,
            l1: CacheConfig {
                capacity: 32 << 10,
                ways: 8,
                latency: 4,
            },
            l2: CacheConfig {
                capacity: 256 << 10,
                ways: 8,
                latency: 12,
            },
            l3: Some(CacheConfig {
                capacity: 2 << 20,
                ways: 16,
                latency: 36,
            }),
            tlb: TlbConfig {
                entries: 512,
                // The paper's Haswell kernel runs with transparent huge
                // pages enabled (§6.2); Fig. 10 flips this to 12.
                page_bits: 21,
                walkers: 2,
                walk_latency: 40,
            },
            dram: DramConfig {
                latency: 200,
                bytes_per_cycle: 8,
            },
            hw_stride_prefetcher: true,
        }
    }

    /// Intel Xeon Phi 3120P: narrow in-order core, big L2, no L3,
    /// high-latency high-bandwidth GDDR5.
    #[must_use]
    pub fn xeon_phi() -> Self {
        MachineConfig {
            name: "xeon_phi",
            core: CoreKind::InOrder,
            width: 2,
            rob: 0,
            mshrs: 1,
            prefetch_queue: 64,
            l1: CacheConfig {
                capacity: 32 << 10,
                ways: 8,
                latency: 3,
            },
            l2: CacheConfig {
                capacity: 512 << 10,
                ways: 8,
                latency: 24,
            },
            l3: None,
            tlb: TlbConfig {
                entries: 256,
                page_bits: 12,
                walkers: 1,
                walk_latency: 60,
            },
            dram: DramConfig {
                latency: 300,
                bytes_per_cycle: 16,
            },
            hw_stride_prefetcher: true,
        }
    }

    /// ARM Cortex-A57 (Nvidia TX1): 3-wide out-of-order, two cache
    /// levels, and — crucially for the paper's analysis — a single
    /// page-table walker.
    #[must_use]
    pub fn a57() -> Self {
        MachineConfig {
            name: "a57",
            core: CoreKind::OutOfOrder,
            width: 3,
            rob: 128,
            mshrs: 6,
            prefetch_queue: 16,
            l1: CacheConfig {
                capacity: 32 << 10,
                ways: 2,
                latency: 4,
            },
            l2: CacheConfig {
                capacity: 512 << 10,
                ways: 16,
                latency: 20,
            },
            l3: None,
            tlb: TlbConfig {
                entries: 512,
                page_bits: 12,
                walkers: 1,
                walk_latency: 35,
            },
            dram: DramConfig {
                latency: 220,
                bytes_per_cycle: 4,
            },
            hw_stride_prefetcher: true,
        }
    }

    /// ARM Cortex-A53 (Odroid C2): 2-wide in-order, stalls on misses.
    #[must_use]
    pub fn a53() -> Self {
        MachineConfig {
            name: "a53",
            core: CoreKind::InOrder,
            width: 2,
            rob: 0,
            mshrs: 1,
            prefetch_queue: 16,
            l1: CacheConfig {
                capacity: 32 << 10,
                ways: 4,
                latency: 3,
            },
            l2: CacheConfig {
                capacity: 256 << 10,
                ways: 16,
                latency: 15,
            },
            l3: None,
            tlb: TlbConfig {
                entries: 512,
                page_bits: 12,
                walkers: 1,
                walk_latency: 30,
            },
            dram: DramConfig {
                latency: 180,
                bytes_per_cycle: 4,
            },
            hw_stride_prefetcher: true,
        }
    }

    /// All four Table 1 systems, in the paper's order.
    #[must_use]
    pub fn all_systems() -> Vec<MachineConfig> {
        vec![Self::haswell(), Self::xeon_phi(), Self::a57(), Self::a53()]
    }

    /// The same machine with 2 MiB transparent huge pages (Fig. 10).
    #[must_use]
    pub fn with_huge_pages(mut self) -> Self {
        self.tlb.page_bits = 21;
        self
    }

    /// The same machine with 4 KiB pages (Fig. 10's "Small Pages").
    #[must_use]
    pub fn with_small_pages(mut self) -> Self {
        self.tlb.page_bits = 12;
        self
    }

    /// The same machine with the hardware stride prefetcher disabled.
    #[must_use]
    pub fn without_hw_prefetcher(mut self) -> Self {
        self.hw_stride_prefetcher = false;
        self
    }

    /// The same machine under a different display name — used when one
    /// base system appears several times in an experiment grid (e.g.
    /// Fig. 10's `haswell_small` / `haswell_huge` page-policy pair).
    #[must_use]
    pub fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Short label for the pipeline style ("in-order"/"out-of-order").
    #[must_use]
    pub fn core_kind_name(&self) -> &'static str {
        match self.core {
            CoreKind::InOrder => "in-order",
            CoreKind::OutOfOrder => "out-of-order",
        }
    }

    /// The scalar configuration parameters as `(name, value)` pairs —
    /// the flat view artifact writers serialise so a results file fully
    /// identifies the machine model it was produced on (`l3_bytes` is 0
    /// when the machine has no L3).
    #[must_use]
    pub fn parameters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("width", u64::from(self.width)),
            ("rob", self.rob as u64),
            ("mshrs", self.mshrs as u64),
            ("prefetch_queue", self.prefetch_queue as u64),
            ("l1_bytes", self.l1.capacity),
            ("l2_bytes", self.l2.capacity),
            ("l3_bytes", self.l3.map_or(0, |c| c.capacity)),
            ("tlb_entries", u64::from(self.tlb.entries)),
            ("page_bits", u64::from(self.tlb.page_bits)),
            ("tlb_walkers", u64::from(self.tlb.walkers)),
            ("dram_latency", self.dram.latency),
            ("dram_bytes_per_cycle", self.dram.bytes_per_cycle),
            ("hw_stride_prefetcher", u64::from(self.hw_stride_prefetcher)),
        ]
    }

    /// Issue interval between instructions, in ticks.
    #[must_use]
    pub fn issue_interval_ticks(&self) -> u64 {
        (TICKS_PER_CYCLE / u64::from(self.width)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1_shape() {
        let h = MachineConfig::haswell();
        assert_eq!(h.core, CoreKind::OutOfOrder);
        assert!(h.l3.is_some(), "Haswell has an L3");
        assert_eq!(h.tlb.walkers, 2);

        let phi = MachineConfig::xeon_phi();
        assert_eq!(phi.core, CoreKind::InOrder);
        assert!(phi.l3.is_none());
        assert!(
            phi.dram.bytes_per_cycle > h.dram.bytes_per_cycle,
            "GDDR5 has more bandwidth"
        );
        assert!(phi.dram.latency > h.dram.latency, "GDDR5 has more latency");

        let a57 = MachineConfig::a57();
        assert_eq!(a57.tlb.walkers, 1, "single page walker on A57 (paper §6.1)");
        assert_eq!(a57.core, CoreKind::OutOfOrder);

        let a53 = MachineConfig::a53();
        assert_eq!(a53.core, CoreKind::InOrder);
    }

    #[test]
    fn huge_pages_change_page_bits_only() {
        let h = MachineConfig::haswell();
        let hp = MachineConfig::haswell().with_huge_pages();
        assert_eq!(hp.tlb.page_bits, 21);
        assert_eq!(hp.tlb.entries, h.tlb.entries);
    }

    #[test]
    fn issue_interval() {
        assert_eq!(MachineConfig::haswell().issue_interval_ticks(), 6);
        assert_eq!(MachineConfig::a53().issue_interval_ticks(), 12);
        // Width 3 must divide evenly — no silent width inflation.
        assert_eq!(MachineConfig::a57().issue_interval_ticks(), 8);
    }
}
