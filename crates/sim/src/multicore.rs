//! Multi-core simulation: private L1/L2/TLB per core, shared LLC + DRAM.
//!
//! Reproduces the paper's Fig. 9 experiment: several cores each run their
//! own copy of a benchmark (no sharing, as in the paper, which runs
//! independent program copies) while contending for last-level-cache
//! capacity and DRAM bandwidth. Cores are interleaved by always stepping
//! the one with the smallest local clock, so shared-resource requests
//! arrive in approximately global time order.
//!
//! The module is decoded into an [`ExecImage`] once and shared by every
//! core's engine, so per-core cost is only the (small) frame state.
//!
//! Like the single-core [`crate::Machine`], the interleaver can record
//! each core's retire-event stream while it measures
//! ([`run_multicore_image_traced`]) and re-drive the timing models from
//! a recorded trace with no interpreters at all ([`replay_multicore`]).
//! Replay preserves the direct runner's scheduling exactly: traces
//! carry interpreter-step boundaries, and both paths interleave cores
//! by smallest local clock in 64-step batches, so shared-resource
//! contention — the whole point of Fig. 9 — is reproduced
//! bit-identically.

use crate::cpu::Core;
use crate::machine::{MachineStatsParts, TimingObserver};
use crate::memsys::{MemSys, SharedMem};
use crate::presets::MachineConfig;
use crate::stats::{SimRun, SimStats};
use std::sync::Arc;
use swpf_ir::exec::ExecImage;
use swpf_ir::interp::{ExecObserver, Interp, RtVal, Step, Tier};
use swpf_ir::{FuncId, Module};
use swpf_trace::{EventSource, StreamingReplay, Tee, Trace, TraceError, TraceRecorder};

struct CoreSlot {
    interp: Interp,
    core: Core,
    mem: MemSys,
    args: Vec<RtVal>,
    done: bool,
}

/// Steps one interleaved core batch: 64 interpreter steps (or until the
/// program finishes), reporting events through the shared
/// [`TimingObserver`] path, optionally tee'd into a per-core trace
/// stream.
fn step_batch(
    i: usize,
    slot: &mut CoreSlot,
    shared: &mut SharedMem,
    recorder: &mut Option<&mut TraceRecorder>,
) {
    for _ in 0..64 {
        let mut obs = TimingObserver {
            core: &mut slot.core,
            mem: &mut slot.mem,
            shared,
        };
        let step = match recorder {
            Some(rec) => {
                let step = {
                    let mut tee = Tee(rec.stream(i), &mut obs);
                    slot.interp.step_cursor(&mut tee)
                };
                rec.stream(i).end_step();
                step
            }
            None => slot.interp.step_cursor(&mut obs),
        };
        match step {
            Ok(Step::Continue) => {}
            Ok(Step::Done(_)) => {
                slot.done = true;
                break;
            }
            Err(t) => panic!("core {i} trapped: {t}"),
        }
    }
}

/// Run `n_cores` independent copies of `func` against a shared LLC and
/// DRAM channel; returns per-core statistics.
///
/// `setup` is invoked once per core with the core index, so each copy
/// can build its own private data (as the paper does when it runs "four
/// copies of the benchmark simultaneously on four different cores").
///
/// # Panics
/// If any core's program traps.
pub fn run_multicore(
    config: &MachineConfig,
    n_cores: usize,
    module: &Module,
    func: FuncId,
    setup: impl FnMut(usize, &mut Interp) -> Vec<RtVal>,
) -> Vec<SimStats> {
    // Decode the module once; every core's engine shares the image.
    run_multicore_image(
        config,
        n_cores,
        &Arc::new(ExecImage::build(module)),
        func,
        setup,
    )
}

/// Like [`run_multicore`], from an already-decoded image, so callers
/// that already amortised the decode (the experiment harness) skip it
/// here too. `func` must belong to the module `image` was built from.
///
/// # Panics
/// If any core's program traps.
pub fn run_multicore_image(
    config: &MachineConfig,
    n_cores: usize,
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnMut(usize, &mut Interp) -> Vec<RtVal>,
) -> Vec<SimStats> {
    run_multicore_inner(config, n_cores, image, func, setup, None, None)
        .into_iter()
        .map(|r| r.stats)
        .collect()
}

/// Like [`run_multicore_image`], returning each core's per-PC profile
/// alongside its stats (see [`crate::perf`]; profiles are `None` unless
/// profiling is enabled).
///
/// # Panics
/// If any core's program traps.
pub fn run_multicore_image_perf(
    config: &MachineConfig,
    n_cores: usize,
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnMut(usize, &mut Interp) -> Vec<RtVal>,
) -> Vec<SimRun> {
    run_multicore_inner(config, n_cores, image, func, setup, None, None)
}

/// Like [`run_multicore_image`], but on an explicit execution [`Tier`]
/// instead of the `SWPF_TIER` environment default — the shape the
/// differential suites use to prove tier-identical contention schedules
/// without racing on process-global environment state.
///
/// # Panics
/// If any core's program traps.
pub fn run_multicore_image_tier(
    config: &MachineConfig,
    n_cores: usize,
    image: &Arc<ExecImage>,
    func: FuncId,
    tier: Tier,
    setup: impl FnMut(usize, &mut Interp) -> Vec<RtVal>,
) -> Vec<SimStats> {
    run_multicore_inner(config, n_cores, image, func, setup, Some(tier), None)
        .into_iter()
        .map(|r| r.stats)
        .collect()
}

/// Like [`run_multicore_image`], additionally recording each core's
/// retire-event stream (with step boundaries) into `recorder` while the
/// timing models measure. The recorder must have been built with
/// `n_cores` streams.
///
/// # Panics
/// If any core's program traps, or the recorder has too few streams.
pub fn run_multicore_image_traced(
    config: &MachineConfig,
    n_cores: usize,
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnMut(usize, &mut Interp) -> Vec<RtVal>,
    recorder: &mut TraceRecorder,
) -> Vec<SimStats> {
    run_multicore_image_traced_perf(config, n_cores, image, func, setup, recorder)
        .into_iter()
        .map(|r| r.stats)
        .collect()
}

/// Like [`run_multicore_image_traced`], returning each core's per-PC
/// profile alongside its stats.
///
/// # Panics
/// If any core's program traps, or the recorder has too few streams.
pub fn run_multicore_image_traced_perf(
    config: &MachineConfig,
    n_cores: usize,
    image: &Arc<ExecImage>,
    func: FuncId,
    setup: impl FnMut(usize, &mut Interp) -> Vec<RtVal>,
    recorder: &mut TraceRecorder,
) -> Vec<SimRun> {
    run_multicore_inner(config, n_cores, image, func, setup, None, Some(recorder))
}

fn run_multicore_inner(
    config: &MachineConfig,
    n_cores: usize,
    image: &Arc<ExecImage>,
    func: FuncId,
    mut setup: impl FnMut(usize, &mut Interp) -> Vec<RtVal>,
    tier: Option<Tier>,
    mut recorder: Option<&mut TraceRecorder>,
) -> Vec<SimRun> {
    let mut shared = SharedMem::new(config);
    let mut slots: Vec<CoreSlot> = (0..n_cores)
        .map(|i| {
            let mut interp = tier.map_or_else(Interp::new, Interp::with_tier);
            let args = setup(i, &mut interp);
            let mut mem = MemSys::new(config);
            mem.set_address_space(i as u64);
            CoreSlot {
                interp,
                core: Core::new(config),
                mem,
                args,
                done: false,
            }
        })
        .collect();
    for slot in &mut slots {
        slot.interp
            .start_with_image(Arc::clone(image), func, &slot.args);
    }

    // Interleave: step the core with the smallest local clock, in small
    // batches to amortise scheduling overhead; local clocks advance
    // slowly per instruction so interleaving stays fine-grained enough
    // for bandwidth contention.
    loop {
        let next = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .min_by_key(|(_, s)| s.core.clock_ticks())
            .map(|(i, _)| i);
        let Some(i) = next else { break };
        step_batch(i, &mut slots[i], &mut shared, &mut recorder);
    }

    slots
        .iter_mut()
        .map(|s| {
            let stats = MachineStatsParts {
                core: &s.core,
                mem: &s.mem,
                shared: &shared,
            }
            .collect();
            SimRun {
                stats,
                perf: s.mem.take_perf(),
            }
        })
        .collect()
}

/// Re-drive `trace.num_cores()` timing models from a recorded multicore
/// trace — no interpreters, no simulated memory. Scheduling matches
/// [`run_multicore_image`] exactly (smallest-clock-first, 64-step
/// batches, using the step boundaries the trace carries), so the
/// per-core statistics are bit-identical to the direct run the trace
/// was recorded from.
///
/// # Errors
/// Any [`TraceError`] in the encoded streams.
pub fn replay_multicore(
    config: &MachineConfig,
    trace: &Trace,
) -> Result<Vec<SimStats>, TraceError> {
    Ok(replay_multicore_perf(config, trace)?
        .into_iter()
        .map(|r| r.stats)
        .collect())
}

/// Like [`replay_multicore`], returning each core's per-PC profile
/// alongside its stats.
///
/// # Errors
/// Any [`TraceError`] in the encoded streams.
pub fn replay_multicore_perf(
    config: &MachineConfig,
    trace: &Trace,
) -> Result<Vec<SimRun>, TraceError> {
    let cursors = (0..trace.num_cores())
        .map(|i| trace.cursor(i))
        .collect::<Result<Vec<_>, _>>()?;
    replay_multicore_from(config, cursors)
}

/// Like [`replay_multicore`], but streaming each core's events
/// block-at-a-time straight from the v2 trace file — every core gets
/// its own [`swpf_trace::StreamingCursor`] (own file handle), so peak
/// memory is one block window per core regardless of trace length.
/// Scheduling, and therefore every counter, matches [`replay_multicore`]
/// on the decoded trace bit-for-bit.
///
/// # Errors
/// Any [`TraceError`] in the file.
pub fn streaming_replay_multicore(
    config: &MachineConfig,
    replay: &StreamingReplay,
) -> Result<Vec<SimStats>, TraceError> {
    Ok(streaming_replay_multicore_perf(config, replay)?
        .into_iter()
        .map(|r| r.stats)
        .collect())
}

/// Like [`streaming_replay_multicore`], returning each core's per-PC
/// profile alongside its stats.
///
/// # Errors
/// Any [`TraceError`] in the file.
pub fn streaming_replay_multicore_perf(
    config: &MachineConfig,
    replay: &StreamingReplay,
) -> Result<Vec<SimRun>, TraceError> {
    let cursors = (0..replay.num_cores())
        .map(|i| replay.cursor(i))
        .collect::<Result<Vec<_>, _>>()?;
    replay_multicore_from(config, cursors)
}

/// The [`EventSource`]-generic interleaver behind both replay flavours:
/// smallest-local-clock-first, 64-step batches, step boundaries from
/// the trace — exactly the direct runner's schedule.
fn replay_multicore_from<S: EventSource>(
    config: &MachineConfig,
    cursors: Vec<S>,
) -> Result<Vec<SimRun>, TraceError> {
    struct ReplaySlot<S> {
        cursor: S,
        core: Core,
        mem: MemSys,
        done: bool,
    }
    let mut shared = SharedMem::new(config);
    let mut slots: Vec<ReplaySlot<S>> = cursors
        .into_iter()
        .enumerate()
        .map(|(i, cursor)| {
            let mut mem = MemSys::new(config);
            mem.set_address_space(i as u64);
            ReplaySlot {
                cursor,
                core: Core::new(config),
                mem,
                done: false,
            }
        })
        .collect();

    loop {
        let next = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .min_by_key(|(_, s)| s.core.clock_ticks())
            .map(|(i, _)| i);
        let Some(i) = next else { break };
        let slot = &mut slots[i];
        'batch: for _ in 0..64 {
            // One interpreter step = events up to an end-of-step mark.
            loop {
                let Some((ev, end_of_step)) = slot.cursor.next_event()? else {
                    slot.done = true;
                    break 'batch;
                };
                let mut obs = TimingObserver {
                    core: &mut slot.core,
                    mem: &mut slot.mem,
                    shared: &mut shared,
                };
                obs.on_event(&ev);
                if end_of_step {
                    break;
                }
            }
        }
    }

    Ok(slots
        .iter_mut()
        .map(|s| {
            let stats = MachineStatsParts {
                core: &s.core,
                mem: &s.mem,
                shared: &shared,
            }
            .collect();
            SimRun {
                stats,
                perf: s.mem.take_perf(),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::prelude::*;

    /// A bandwidth-hungry random-walk kernel: every load misses.
    fn pointer_chase_module() -> Module {
        let mut m = Module::new("t");
        let fid = m.declare_function("chase", &[Type::Ptr, Type::I64], Type::I64);
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, n) = (b.arg(0), b.arg(1));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let cur = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let g = b.gep(a, cur, 8);
        let nxt = b.load(Type::I64, g);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(cur, body, nxt);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(cur));
        let _ = b;
        m
    }

    fn setup_ring(interp: &mut Interp, elems: u64) -> u64 {
        let a = interp.alloc_array(elems, 8).unwrap();
        // A random-ish permutation ring so every access is a fresh line.
        let mut idx: Vec<u64> = (1..elems).collect();
        let mut x = 88172645463325252u64;
        for i in (1..idx.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let j = (x % (i as u64 + 1)) as usize;
            idx.swap(i, j);
        }
        let mut cur = 0u64;
        for &next in &idx {
            interp.mem().write(a + cur * 8, 8, next).unwrap();
            cur = next;
        }
        interp.mem().write(a + cur * 8, 8, 0).unwrap();
        a
    }

    #[test]
    fn contention_slows_each_core() {
        let m = pointer_chase_module();
        let f = m.find_function("chase").unwrap();
        let cfg = MachineConfig::haswell();
        let elems = 1u64 << 15; // 256 KiB per core: misses LLC when shared
        let iters = 2000i64;

        let solo = run_multicore(&cfg, 1, &m, f, |_, interp| {
            let a = setup_ring(interp, elems);
            vec![RtVal::Int(a as i64), RtVal::Int(iters)]
        });
        let quad = run_multicore(&cfg, 4, &m, f, |_, interp| {
            let a = setup_ring(interp, elems);
            vec![RtVal::Int(a as i64), RtVal::Int(iters)]
        });
        assert_eq!(quad.len(), 4);
        let solo_c = solo[0].cycles;
        let worst = quad.iter().map(|s| s.cycles).max().unwrap();
        assert!(
            worst > solo_c,
            "sharing the LLC and DRAM must cost something: {solo_c} vs {worst}"
        );
    }

    /// Replay equivalence under contention: recording a multicore run
    /// does not perturb it, and replaying the (envelope round-tripped)
    /// trace reproduces every core's counters bit-for-bit — the
    /// step-boundary scheduling contract.
    #[test]
    fn multicore_replay_is_bit_identical() {
        let m = pointer_chase_module();
        let f = m.find_function("chase").unwrap();
        let cfg = MachineConfig::haswell();
        let image = Arc::new(ExecImage::build(&m));
        let setup = |_: usize, interp: &mut Interp| {
            let a = setup_ring(interp, 1 << 12);
            vec![RtVal::Int(a as i64), RtVal::Int(500)]
        };
        let direct = run_multicore_image(&cfg, 3, &image, f, setup);
        let mut rec = TraceRecorder::new(3, 0);
        let traced = run_multicore_image_traced(&cfg, 3, &image, f, setup, &mut rec);
        let bytes = rec.finish().to_bytes();
        let trace = Trace::from_bytes(&bytes).unwrap();
        let replayed = replay_multicore(&cfg, &trace).unwrap();
        // The streaming path interleaves the same per-core streams
        // block-at-a-time straight from the file.
        let path = std::env::temp_dir().join(format!("swpf_mc_{}.trace", std::process::id()));
        std::fs::write(&path, &bytes).expect("trace written");
        let streamed = {
            let replay = StreamingReplay::open(&path).expect("streaming open");
            streaming_replay_multicore(&cfg, &replay).expect("streaming replay")
        };
        std::fs::remove_file(&path).ok();
        assert_eq!(replayed.len(), 3);
        assert_eq!(streamed.len(), 3);
        for (i, (((d, t), r), s)) in direct
            .iter()
            .zip(&traced)
            .zip(&replayed)
            .zip(&streamed)
            .enumerate()
        {
            assert_eq!(d.counters(), t.counters(), "recording perturbed core {i}");
            assert_eq!(d.counters(), r.counters(), "replay diverged on core {i}");
            assert_eq!(
                d.counters(),
                s.counters(),
                "streaming replay diverged on core {i}"
            );
        }
    }
}
