//! Multi-core simulation: private L1/L2/TLB per core, shared LLC + DRAM.
//!
//! Reproduces the paper's Fig. 9 experiment: several cores each run their
//! own copy of a benchmark (no sharing, as in the paper, which runs
//! independent program copies) while contending for last-level-cache
//! capacity and DRAM bandwidth. Cores are interleaved by always stepping
//! the one with the smallest local clock, so shared-resource requests
//! arrive in approximately global time order.
//!
//! The module is decoded into an [`ExecImage`] once and shared by every
//! core's engine, so per-core cost is only the (small) frame state.

use crate::cpu::Core;
use crate::machine::MachineStatsParts;
use crate::memsys::{MemSys, SharedMem};
use crate::presets::MachineConfig;
use crate::stats::SimStats;
use std::sync::Arc;
use swpf_ir::exec::ExecImage;
use swpf_ir::interp::{Event, ExecObserver, Interp, RtVal, Step};
use swpf_ir::{FuncId, Module};

struct CoreSlot {
    interp: Interp,
    core: Core,
    mem: MemSys,
    args: Vec<RtVal>,
    done: bool,
}

struct Obs<'a> {
    core: &'a mut Core,
    mem: &'a mut MemSys,
    shared: &'a mut SharedMem,
}

impl ExecObserver for Obs<'_> {
    fn on_event(&mut self, ev: &Event<'_>) {
        self.core.retire(
            self.mem,
            self.shared,
            ev.kind,
            ev.frame,
            ev.result.0,
            ev.operands,
            ev.pc,
        );
    }
}

/// Run `n_cores` independent copies of `func` against a shared LLC and
/// DRAM channel; returns per-core statistics.
///
/// `setup` is invoked once per core with the core index, so each copy
/// can build its own private data (as the paper does when it runs "four
/// copies of the benchmark simultaneously on four different cores").
///
/// # Panics
/// If any core's program traps.
pub fn run_multicore(
    config: &MachineConfig,
    n_cores: usize,
    module: &Module,
    func: FuncId,
    setup: impl FnMut(usize, &mut Interp) -> Vec<RtVal>,
) -> Vec<SimStats> {
    // Decode the module once; every core's engine shares the image.
    run_multicore_image(
        config,
        n_cores,
        &Arc::new(ExecImage::build(module)),
        func,
        setup,
    )
}

/// Like [`run_multicore`], from an already-decoded image, so callers
/// that already amortised the decode (the experiment harness) skip it
/// here too. `func` must belong to the module `image` was built from.
///
/// # Panics
/// If any core's program traps.
pub fn run_multicore_image(
    config: &MachineConfig,
    n_cores: usize,
    image: &Arc<ExecImage>,
    func: FuncId,
    mut setup: impl FnMut(usize, &mut Interp) -> Vec<RtVal>,
) -> Vec<SimStats> {
    let mut shared = SharedMem::new(config);
    let mut slots: Vec<CoreSlot> = (0..n_cores)
        .map(|i| {
            let mut interp = Interp::new();
            let args = setup(i, &mut interp);
            let mut mem = MemSys::new(config);
            mem.set_address_space(i as u64);
            CoreSlot {
                interp,
                core: Core::new(config),
                mem,
                args,
                done: false,
            }
        })
        .collect();
    for slot in &mut slots {
        slot.interp
            .start_with_image(Arc::clone(image), func, &slot.args);
    }

    // Interleave: step the core with the smallest local clock.
    loop {
        let next = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .min_by_key(|(_, s)| s.core.clock_ticks())
            .map(|(i, _)| i);
        let Some(i) = next else { break };
        let slot = &mut slots[i];
        // Step a small batch to amortise scheduling overhead; local
        // clocks advance slowly per instruction so interleaving stays
        // fine-grained enough for bandwidth contention.
        for _ in 0..64 {
            let mut obs = Obs {
                core: &mut slot.core,
                mem: &mut slot.mem,
                shared: &mut shared,
            };
            match slot.interp.step_cursor(&mut obs) {
                Ok(Step::Continue) => {}
                Ok(Step::Done(_)) => {
                    slot.done = true;
                    break;
                }
                Err(t) => panic!("core {i} trapped: {t}"),
            }
        }
    }

    slots
        .iter()
        .map(|s| {
            MachineStatsParts {
                core: &s.core,
                mem: &s.mem,
                shared: &shared,
            }
            .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::prelude::*;

    /// A bandwidth-hungry random-walk kernel: every load misses.
    fn pointer_chase_module() -> Module {
        let mut m = Module::new("t");
        let fid = m.declare_function("chase", &[Type::Ptr, Type::I64], Type::I64);
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, n) = (b.arg(0), b.arg(1));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let cur = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let g = b.gep(a, cur, 8);
        let nxt = b.load(Type::I64, g);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(cur, body, nxt);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(cur));
        let _ = b;
        m
    }

    fn setup_ring(interp: &mut Interp, elems: u64) -> u64 {
        let a = interp.alloc_array(elems, 8).unwrap();
        // A random-ish permutation ring so every access is a fresh line.
        let mut idx: Vec<u64> = (1..elems).collect();
        let mut x = 88172645463325252u64;
        for i in (1..idx.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let j = (x % (i as u64 + 1)) as usize;
            idx.swap(i, j);
        }
        let mut cur = 0u64;
        for &next in &idx {
            interp.mem().write(a + cur * 8, 8, next).unwrap();
            cur = next;
        }
        interp.mem().write(a + cur * 8, 8, 0).unwrap();
        a
    }

    #[test]
    fn contention_slows_each_core() {
        let m = pointer_chase_module();
        let f = m.find_function("chase").unwrap();
        let cfg = MachineConfig::haswell();
        let elems = 1u64 << 15; // 256 KiB per core: misses LLC when shared
        let iters = 2000i64;

        let solo = run_multicore(&cfg, 1, &m, f, |_, interp| {
            let a = setup_ring(interp, elems);
            vec![RtVal::Int(a as i64), RtVal::Int(iters)]
        });
        let quad = run_multicore(&cfg, 4, &m, f, |_, interp| {
            let a = setup_ring(interp, elems);
            vec![RtVal::Int(a as i64), RtVal::Int(iters)]
        });
        assert_eq!(quad.len(), 4);
        let solo_c = solo[0].cycles;
        let worst = quad.iter().map(|s| s.cycles).max().unwrap();
        assert!(
            worst > solo_c,
            "sharing the LLC and DRAM must cost something: {solo_c} vs {worst}"
        );
    }
}
