//! Natural-loop detection and nesting.

use crate::dom::DomTree;
use swpf_ir::{BlockId, Function};

/// Index of a loop within a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl LoopId {
    /// The arena slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A natural loop: the strongly-connected body reached by back edges into
/// a single header.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The single entry block; its phis carry the induction variables.
    pub header: BlockId,
    /// Blocks with a back edge to the header (usually exactly one).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, header included, sorted.
    pub blocks: Vec<BlockId>,
    /// The unique predecessor of `header` outside the loop, when one
    /// exists. Induction-variable initial values flow in from here.
    pub preheader: Option<BlockId>,
    /// Immediately enclosing loop, if nested.
    pub parent: Option<LoopId>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: u32,
    /// Blocks inside the loop with a successor outside it.
    pub exiting: Vec<BlockId>,
}

impl Loop {
    /// Whether `b` belongs to this loop.
    #[must_use]
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// All natural loops of a function, with innermost-loop lookup per block.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop containing each block, if any.
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Detect all natural loops of `f`.
    ///
    /// Irreducible control flow (a cycle entered other than through its
    /// header) is not given a loop; the prefetch pass simply sees no
    /// induction variable there and skips it, matching the paper's
    /// conservative stance.
    #[must_use]
    pub fn compute(f: &Function, dom: &DomTree) -> Self {
        let preds = f.predecessors();
        // Find back edges (latch → header).
        let mut headers: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for b in f.block_ids() {
            if !dom.is_reachable(b) {
                continue;
            }
            for s in f.successors(b) {
                if dom.dominates(s, b) {
                    match headers.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => headers.push((s, vec![b])),
                    }
                }
            }
        }
        // Natural loop body: backwards reachability from latches, stopping
        // at the header.
        let mut loops = Vec::new();
        for (header, latches) in headers {
            let mut in_loop = vec![false; f.num_blocks()];
            in_loop[header.index()] = true;
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                if in_loop[b.index()] {
                    continue;
                }
                in_loop[b.index()] = true;
                for &p in &preds[b.index()] {
                    stack.push(p);
                }
            }
            let blocks: Vec<BlockId> = f.block_ids().filter(|b| in_loop[b.index()]).collect();
            let outside_preds: Vec<BlockId> = preds[header.index()]
                .iter()
                .copied()
                .filter(|p| !in_loop[p.index()])
                .collect();
            let preheader = match outside_preds.as_slice() {
                [single] => Some(*single),
                _ => None,
            };
            let exiting: Vec<BlockId> = blocks
                .iter()
                .copied()
                .filter(|&b| f.successors(b).iter().any(|s| !in_loop[s.index()]))
                .collect();
            loops.push(Loop {
                header,
                latches,
                blocks,
                preheader,
                parent: None,
                depth: 0,
                exiting,
            });
        }

        // Nesting: parent = smallest strictly-containing loop.
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..loops.len()).collect();
            idx.sort_by_key(|&i| loops[i].blocks.len());
            idx
        };
        for (pos, &i) in order.iter().enumerate() {
            for &j in &order[pos + 1..] {
                let child_header = loops[i].header;
                if loops[j].contains(child_header) && i != j {
                    loops[i].parent = Some(LoopId(j as u32));
                    break;
                }
            }
        }
        // Depths.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }
        // Innermost loop per block: the containing loop with max depth.
        let mut innermost: Vec<Option<LoopId>> = vec![None; f.num_blocks()];
        for b in f.block_ids() {
            let mut best: Option<LoopId> = None;
            for (i, l) in loops.iter().enumerate() {
                if l.contains(b) {
                    let better = match best {
                        None => true,
                        Some(cur) => l.depth > loops[cur.index()].depth,
                    };
                    if better {
                        best = Some(LoopId(i as u32));
                    }
                }
            }
            innermost[b.index()] = best;
        }
        LoopForest { loops, innermost }
    }

    /// Number of loops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the function is loop-free.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Iterate over loop ids.
    pub fn ids(&self) -> impl Iterator<Item = LoopId> + '_ {
        (0..self.loops.len() as u32).map(LoopId)
    }

    /// Access a loop.
    #[must_use]
    pub fn get(&self, l: LoopId) -> &Loop {
        &self.loops[l.index()]
    }

    /// The innermost loop containing `b`, if any.
    #[must_use]
    pub fn innermost(&self, b: BlockId) -> Option<LoopId> {
        self.innermost[b.index()]
    }

    /// Whether loop `outer` contains loop `inner` (reflexive).
    #[must_use]
    pub fn loop_contains(&self, outer: LoopId, inner: LoopId) -> bool {
        let mut cur = Some(inner);
        while let Some(l) = cur {
            if l == outer {
                return true;
            }
            cur = self.get(l).parent;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::prelude::*;

    /// Nested loop: for i { for j { } }.
    fn nested(m: &mut Module) -> FuncId {
        let fid = m.declare_function("f", &[Type::I64, Type::I64], None);
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let entry = b.entry_block();
        let oh = b.create_block("outer_header");
        let ob = b.create_block("outer_body");
        let ih = b.create_block("inner_header");
        let ib = b.create_block("inner_body");
        let ol = b.create_block("outer_latch");
        let exit = b.create_block("exit");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(oh);
        b.switch_to(oh);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let ci = b.icmp(Pred::Slt, i, b.arg(0));
        b.cond_br(ci, ob, exit);
        b.switch_to(ob);
        b.br(ih);
        b.switch_to(ih);
        let j = b.phi(Type::I64, &[(ob, zero)]);
        let cj = b.icmp(Pred::Slt, j, b.arg(1));
        b.cond_br(cj, ib, ol);
        b.switch_to(ib);
        let j2 = b.add(j, one);
        b.add_phi_incoming(j, ib, j2);
        b.br(ih);
        b.switch_to(ol);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, ol, i2);
        b.br(oh);
        b.switch_to(exit);
        b.ret(None);
        fid
    }

    #[test]
    fn finds_nested_loops_with_depths() {
        let mut m = Module::new("t");
        let fid = nested(&mut m);
        swpf_ir::verifier::verify_module(&m).unwrap();
        let f = m.function(fid);
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        assert_eq!(forest.len(), 2);

        let inner_header = BlockId(3);
        let outer_header = BlockId(1);
        let inner = forest.innermost(inner_header).expect("inner loop");
        let outer = forest.innermost(outer_header).expect("outer loop");
        assert_ne!(inner, outer);
        assert_eq!(forest.get(inner).depth, 2);
        assert_eq!(forest.get(outer).depth, 1);
        assert_eq!(forest.get(inner).parent, Some(outer));
        assert!(forest.loop_contains(outer, inner));
        assert!(!forest.loop_contains(inner, outer));

        // The inner body's innermost loop is the inner loop.
        assert_eq!(forest.innermost(BlockId(4)), Some(inner));
        // The outer latch belongs only to the outer loop.
        assert_eq!(forest.innermost(BlockId(5)), Some(outer));
        // Preheaders.
        assert_eq!(forest.get(inner).preheader, Some(BlockId(2)));
        assert_eq!(forest.get(outer).preheader, Some(BlockId(0)));
        // Exiting blocks are the headers here.
        assert_eq!(forest.get(inner).exiting, vec![inner_header]);
        assert_eq!(forest.get(outer).exiting, vec![outer_header]);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            b.ret(None);
        }
        let f = m.function(fid);
        let forest = LoopForest::compute(f, &DomTree::compute(f));
        assert!(forest.is_empty());
        assert_eq!(forest.innermost(BlockId(0)), None);
    }

    #[test]
    fn self_loop_block() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let lp = b.create_block("lp");
            let exit = b.create_block("exit");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(lp);
            b.switch_to(lp);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, lp, i2);
            let c = b.icmp(Pred::Slt, i2, b.arg(0));
            b.cond_br(c, lp, exit);
            b.switch_to(exit);
            b.ret(None);
        }
        let f = m.function(fid);
        let forest = LoopForest::compute(f, &DomTree::compute(f));
        assert_eq!(forest.len(), 1);
        let l = forest.get(LoopId(0));
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(1)]);
        assert_eq!(l.blocks, vec![BlockId(1)]);
        assert_eq!(l.preheader, Some(BlockId(0)));
    }
}
