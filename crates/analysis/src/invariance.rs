//! Object roots: a conservative "which object does this address derive
//! from" analysis.
//!
//! The paper's fault-avoidance rule (§4.2) rejects prefetch candidates
//! when the loop stores to a data structure that the prefetch's
//! address-generation code *loads from*: in `x[y[z[i]]]`, a store to `z`
//! inside the loop means the look-ahead load of `z[i+off]` might observe a
//! value the original load would not, producing a wild intermediate
//! address. We approximate "data structure" by the *root* of the address
//! computation: the `alloc`, argument, or other origin the pointer is
//! built from.

use swpf_ir::{Function, InstKind, ValueId, ValueKind};

/// The origin of a pointer value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectRoot {
    /// A distinct allocation made by this `alloc` instruction.
    Alloc(ValueId),
    /// The `index`-th function argument (distinct arguments are assumed
    /// not to alias, the usual restrict-style contract for kernels).
    Arg(u32),
    /// Derived from a loaded pointer or anything else we cannot track;
    /// must be assumed to alias everything.
    Unknown,
}

impl ObjectRoot {
    /// Whether two roots may refer to overlapping storage.
    #[must_use]
    pub fn may_alias(self, other: ObjectRoot) -> bool {
        match (self, other) {
            (ObjectRoot::Unknown, _) | (_, ObjectRoot::Unknown) => true,
            (a, b) => a == b,
        }
    }
}

/// Walk the address computation of `addr` back to its object root.
///
/// Follows `gep` bases, casts and selects (a select of two pointers with
/// the same root keeps that root; different roots degrade to `Unknown`).
#[must_use]
pub fn object_root(f: &Function, addr: ValueId) -> ObjectRoot {
    object_root_rec(f, addr, 0)
}

/// Like [`object_root`], but tracks *all* possible roots through phi
/// nodes and selects instead of collapsing to `Unknown`.
///
/// A phi over two queue pointers (the ping-pong buffers of a BFS, say)
/// yields both argument roots, so a store through one can be tested
/// against a load from an unrelated array without a false conflict.
/// `Unknown` still appears for untrackable origins (loaded pointers),
/// and [`roots_may_alias`] treats it as aliasing everything.
#[must_use]
pub fn object_roots(f: &Function, addr: ValueId) -> Vec<ObjectRoot> {
    let mut out = Vec::new();
    let mut visited = std::collections::BTreeSet::new();
    object_roots_rec(f, addr, &mut out, &mut visited, 0);
    if out.is_empty() {
        out.push(ObjectRoot::Unknown);
    }
    out.sort_unstable_by_key(|r| match r {
        ObjectRoot::Alloc(v) => (0u8, v.0),
        ObjectRoot::Arg(i) => (1, *i),
        ObjectRoot::Unknown => (2, 0),
    });
    out.dedup();
    out
}

fn object_roots_rec(
    f: &Function,
    v: ValueId,
    out: &mut Vec<ObjectRoot>,
    visited: &mut std::collections::BTreeSet<ValueId>,
    depth: u32,
) {
    if depth > 64 || !visited.insert(v) {
        return;
    }
    match &f.value(v).kind {
        ValueKind::Arg { index } => out.push(ObjectRoot::Arg(*index)),
        ValueKind::Const(_) => out.push(ObjectRoot::Unknown),
        ValueKind::Inst(inst) => match &inst.kind {
            InstKind::Alloc { .. } => out.push(ObjectRoot::Alloc(v)),
            InstKind::Gep { base, .. } => object_roots_rec(f, *base, out, visited, depth + 1),
            InstKind::Cast { val, .. } => object_roots_rec(f, *val, out, visited, depth + 1),
            InstKind::Select {
                then_val, else_val, ..
            } => {
                object_roots_rec(f, *then_val, out, visited, depth + 1);
                object_roots_rec(f, *else_val, out, visited, depth + 1);
            }
            InstKind::Phi { incomings } => {
                for (_, iv) in incomings {
                    object_roots_rec(f, *iv, out, visited, depth + 1);
                }
            }
            InstKind::Binary { lhs, .. } => object_roots_rec(f, *lhs, out, visited, depth + 1),
            _ => out.push(ObjectRoot::Unknown),
        },
    }
}

/// Whether any root in `a` may alias any root in `b`.
#[must_use]
pub fn roots_may_alias(a: &[ObjectRoot], b: &[ObjectRoot]) -> bool {
    a.iter().any(|x| b.iter().any(|y| x.may_alias(*y)))
}

fn object_root_rec(f: &Function, v: ValueId, depth: u32) -> ObjectRoot {
    if depth > 64 {
        return ObjectRoot::Unknown;
    }
    match &f.value(v).kind {
        ValueKind::Arg { index } => ObjectRoot::Arg(*index),
        ValueKind::Const(_) => ObjectRoot::Unknown,
        ValueKind::Inst(inst) => match &inst.kind {
            InstKind::Alloc { .. } => ObjectRoot::Alloc(v),
            InstKind::Gep { base, .. } => object_root_rec(f, *base, depth + 1),
            InstKind::Cast { val, .. } => object_root_rec(f, *val, depth + 1),
            InstKind::Select {
                then_val, else_val, ..
            } => {
                let a = object_root_rec(f, *then_val, depth + 1);
                let b = object_root_rec(f, *else_val, depth + 1);
                if a == b {
                    a
                } else {
                    ObjectRoot::Unknown
                }
            }
            // Binary pointer arithmetic (ptr as int) keeps the root when
            // one side resolves; stay conservative and try the lhs only.
            InstKind::Binary { lhs, .. } => object_root_rec(f, *lhs, depth + 1),
            _ => ObjectRoot::Unknown,
        },
    }
}

/// The object roots of every store address within the given blocks,
/// with phi-aware multi-root resolution.
#[must_use]
pub fn store_roots_in(f: &Function, blocks: &[swpf_ir::BlockId]) -> Vec<ObjectRoot> {
    let mut roots = Vec::new();
    for &b in blocks {
        for &v in &f.block(b).insts {
            if let Some(InstKind::Store { addr, .. }) = f.inst(v).map(|i| &i.kind) {
                roots.extend(object_roots(f, *addr));
            }
        }
    }
    roots.sort_unstable_by_key(|r| match r {
        ObjectRoot::Alloc(v) => (0u8, v.0),
        ObjectRoot::Arg(i) => (1, *i),
        ObjectRoot::Unknown => (2, 0),
    });
    roots.dedup();
    roots
}

/// Memoised object roots for every value of one function.
///
/// [`object_root`] and [`object_roots`] are bounded graph walks; the
/// prefetch pass asks them once per candidate base and once per chain
/// load per store-aliasing test, and a pass-manager analysis cache wants
/// a product it can compute once and invalidate on mutation. This
/// analysis walks every value eagerly and answers both query shapes in
/// O(1), with results identical to the free functions (the single-root
/// and multi-root walks deliberately differ — see [`object_roots`]).
#[derive(Debug)]
pub struct RootsAnalysis {
    single: Vec<ObjectRoot>,
    multi: Vec<Vec<ObjectRoot>>,
}

impl RootsAnalysis {
    /// Walk every value of `f` once.
    #[must_use]
    pub fn compute(f: &Function) -> Self {
        let n = f.num_values();
        let mut single = Vec::with_capacity(n);
        let mut multi = Vec::with_capacity(n);
        for i in 0..n {
            let v = ValueId(i as u32);
            single.push(object_root(f, v));
            multi.push(object_roots(f, v));
        }
        RootsAnalysis { single, multi }
    }

    /// The single collapsed root of `v` (≡ [`object_root`]).
    #[must_use]
    pub fn root_of(&self, v: ValueId) -> ObjectRoot {
        self.single[v.index()]
    }

    /// All possible roots of `v` (≡ [`object_roots`]).
    #[must_use]
    pub fn roots_of(&self, v: ValueId) -> &[ObjectRoot] {
        &self.multi[v.index()]
    }

    /// The roots of every store address within `blocks`
    /// (≡ [`store_roots_in`]), answered from the memo.
    #[must_use]
    pub fn store_roots_in(&self, f: &Function, blocks: &[swpf_ir::BlockId]) -> Vec<ObjectRoot> {
        let mut roots = Vec::new();
        for &b in blocks {
            for &v in &f.block(b).insts {
                if let Some(InstKind::Store { addr, .. }) = f.inst(v).map(|i| &i.kind) {
                    roots.extend_from_slice(self.roots_of(*addr));
                }
            }
        }
        roots.sort_unstable_by_key(|r| match r {
            ObjectRoot::Alloc(v) => (0u8, v.0),
            ObjectRoot::Arg(i) => (1, *i),
            ObjectRoot::Unknown => (2, 0),
        });
        roots.dedup();
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::prelude::*;

    #[test]
    fn roots_of_args_and_allocs() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr, Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let p = b.arg(0);
            let n = b.arg(1);
            let heap = b.alloc(n, 8);
            let g1 = b.gep(p, n, 8);
            let g2 = b.gep(heap, n, 8);
            let g3 = b.gep(g2, n, 8); // gep of gep keeps the alloc root
            b.store(n, g1);
            b.store(n, g3);
            b.ret(None);
            let _ = b;
            let f = m.function(fid);
            assert_eq!(object_root(f, g1), ObjectRoot::Arg(0));
            assert_eq!(object_root(f, g2), ObjectRoot::Alloc(heap));
            assert_eq!(object_root(f, g3), ObjectRoot::Alloc(heap));
            assert!(!object_root(f, g1).may_alias(object_root(f, g2)));
            assert!(object_root(f, g3).may_alias(object_root(f, g2)));
        }
    }

    #[test]
    fn loaded_pointer_is_unknown() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let p = b.arg(0);
            let q = b.load(Type::Ptr, p); // pointer loaded from memory
            let zero = b.const_i64(0);
            let g = b.gep(q, zero, 8);
            b.ret(None);
            let _ = b;
            let f = m.function(fid);
            assert_eq!(object_root(f, g), ObjectRoot::Unknown);
            assert!(object_root(f, g).may_alias(ObjectRoot::Arg(0)));
        }
    }

    #[test]
    fn select_of_same_root_keeps_root() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr, Type::Ptr, Type::I1], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (p, q, c) = (b.arg(0), b.arg(1), b.arg(2));
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            let pa = b.gep(p, zero, 8);
            let pb = b.gep(p, one, 8);
            let same = b.select(c, pa, pb);
            let diff = b.select(c, pa, q);
            b.ret(None);
            let _ = b;
            let f = m.function(fid);
            assert_eq!(object_root(f, same), ObjectRoot::Arg(0));
            assert_eq!(object_root(f, diff), ObjectRoot::Unknown);
        }
    }

    #[test]
    fn memoised_roots_match_the_free_functions() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr, Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (p, n) = (b.arg(0), b.arg(1));
            let heap = b.alloc(n, 8);
            let g1 = b.gep(p, n, 8);
            let g2 = b.gep(heap, n, 8);
            let q = b.load(Type::Ptr, g1);
            let g3 = b.gep(q, n, 8);
            b.store(n, g2);
            b.store(n, g3);
            b.ret(None);
        }
        let f = m.function(fid);
        let memo = RootsAnalysis::compute(f);
        for i in 0..f.num_values() {
            let v = ValueId(i as u32);
            assert_eq!(memo.root_of(v), object_root(f, v), "single root of {v}");
            assert_eq!(memo.roots_of(v), object_roots(f, v), "multi roots of {v}");
        }
        assert_eq!(
            memo.store_roots_in(f, &[BlockId(0)]),
            store_roots_in(f, &[BlockId(0)])
        );
    }

    #[test]
    fn store_roots_collects_loop_stores() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr, Type::Ptr], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let zero = b.const_i64(0);
            let a0 = b.gep(b.arg(0), zero, 8);
            b.store(zero, a0);
            b.ret(None);
        }
        let f = m.function(fid);
        let roots = store_roots_in(f, &[BlockId(0)]);
        assert_eq!(roots, vec![ObjectRoot::Arg(0)]);
    }
}
