//! # swpf-analysis — loop and dependence analyses over `swpf-ir`
//!
//! The prefetch-generation pass of the CGO'17 paper needs exactly four
//! pieces of static information (paper §4.1–4.2):
//!
//! 1. **Dominators** ([`dom`]) — for SSA sanity and for deciding whether an
//!    instruction executes on every loop iteration.
//! 2. **Natural loops** ([`loops`]) — headers, latches, preheaders, nesting
//!    depth; the pass walks loads *inside loops* and prefers induction
//!    variables of the *innermost* enclosing loop.
//! 3. **Induction variables** ([`indvar`]) — canonical `phi`/`add` cycles
//!    with their loop-termination bounds, which double as data-structure
//!    size information for fault-avoidance clamping when no `alloc` is
//!    visible (paper §4.2).
//! 4. **Invariance and object roots** ([`invariance`]) — loop-invariance
//!    of values, and a conservative "which allocation does this address
//!    derive from" analysis used to reject prefetch candidates whose
//!    address-generating arrays are stored to inside the loop. The
//!    per-value root walks are memoised by [`invariance::RootsAnalysis`].
//!
//! [`FuncAnalysis::compute`] bundles all of them. Each component sits
//! behind an [`Arc`] so a pass-manager analysis cache (`swpf-pass`) can
//! hand out shared results and fork cheaply; `FuncAnalysis` itself is a
//! cheap bundle of clones of those `Arc`s.

pub mod dom;
pub mod indvar;
pub mod invariance;
pub mod loops;

pub use dom::DomTree;
pub use indvar::{InductionVar, IvAnalysis, LoopBound};
pub use invariance::{object_root, object_roots, roots_may_alias, ObjectRoot, RootsAnalysis};
pub use loops::{Loop, LoopForest, LoopId};

use std::sync::Arc;
use swpf_ir::Function;

/// All per-function analyses bundled together, individually shareable.
#[derive(Debug, Clone)]
pub struct FuncAnalysis {
    /// Dominator tree.
    pub dom: Arc<DomTree>,
    /// Natural-loop forest.
    pub loops: Arc<LoopForest>,
    /// Induction variables and loop bounds.
    pub ivs: Arc<IvAnalysis>,
    /// Memoised object roots of every value (invariance/aliasing).
    pub roots: Arc<RootsAnalysis>,
}

impl FuncAnalysis {
    /// Run every analysis on `f`.
    #[must_use]
    pub fn compute(f: &Function) -> Self {
        let dom = Arc::new(DomTree::compute(f));
        let loops = Arc::new(LoopForest::compute(f, &dom));
        let ivs = Arc::new(IvAnalysis::compute(f, &loops));
        let roots = Arc::new(RootsAnalysis::compute(f));
        FuncAnalysis {
            dom,
            loops,
            ivs,
            roots,
        }
    }
}
