//! # swpf-analysis — loop and dependence analyses over `swpf-ir`
//!
//! The prefetch-generation pass of the CGO'17 paper needs exactly four
//! pieces of static information (paper §4.1–4.2):
//!
//! 1. **Dominators** ([`dom`]) — for SSA sanity and for deciding whether an
//!    instruction executes on every loop iteration.
//! 2. **Natural loops** ([`loops`]) — headers, latches, preheaders, nesting
//!    depth; the pass walks loads *inside loops* and prefers induction
//!    variables of the *innermost* enclosing loop.
//! 3. **Induction variables** ([`indvar`]) — canonical `phi`/`add` cycles
//!    with their loop-termination bounds, which double as data-structure
//!    size information for fault-avoidance clamping when no `alloc` is
//!    visible (paper §4.2).
//! 4. **Invariance and object roots** ([`invariance`]) — loop-invariance
//!    of values, and a conservative "which allocation does this address
//!    derive from" analysis used to reject prefetch candidates whose
//!    address-generating arrays are stored to inside the loop.
//!
//! [`FuncAnalysis::compute`] bundles all of them.

pub mod dom;
pub mod indvar;
pub mod invariance;
pub mod loops;

pub use dom::DomTree;
pub use indvar::{InductionVar, IvAnalysis, LoopBound};
pub use invariance::{object_root, object_roots, roots_may_alias, ObjectRoot};
pub use loops::{Loop, LoopForest, LoopId};

use swpf_ir::Function;

/// All per-function analyses bundled together.
#[derive(Debug)]
pub struct FuncAnalysis {
    /// Dominator tree.
    pub dom: DomTree,
    /// Natural-loop forest.
    pub loops: LoopForest,
    /// Induction variables and loop bounds.
    pub ivs: IvAnalysis,
}

impl FuncAnalysis {
    /// Run every analysis on `f`.
    #[must_use]
    pub fn compute(f: &Function) -> Self {
        let dom = DomTree::compute(f);
        let loops = LoopForest::compute(f, &dom);
        let ivs = IvAnalysis::compute(f, &loops);
        FuncAnalysis { dom, loops, ivs }
    }
}
