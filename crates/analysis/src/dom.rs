//! Dominator tree with O(depth) dominance queries.

use swpf_ir::{BlockId, Function};

/// A dominator tree over a function's CFG.
///
/// Built with the Cooper–Harvey–Kennedy iterative algorithm (shared with
/// the IR verifier) and augmented with depths for fast queries.
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
    depth: Vec<u32>,
}

impl DomTree {
    /// Compute the dominator tree of `f`.
    #[must_use]
    pub fn compute(f: &Function) -> Self {
        let idom = swpf_ir::verifier::compute_idom(f);
        let n = idom.len();
        let mut depth = vec![0u32; n];
        // Entry has depth 0; children one more than their parent. Iterate
        // until fixed point (the tree is shallow; a couple of passes).
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if let Some(p) = idom[b] {
                    if p.index() != b {
                        let d = depth[p.index()] + 1;
                        if depth[b] != d {
                            depth[b] = d;
                            changed = true;
                        }
                    }
                }
            }
        }
        DomTree { idom, depth }
    }

    /// The immediate dominator of `b`; entry maps to itself, unreachable
    /// blocks to `None`.
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `b` is reachable from the entry block.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }

    /// Whether `a` dominates `b` (reflexive).
    ///
    /// Returns `false` when either block is unreachable.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        while self.depth[cur.index()] > self.depth[a.index()] {
            cur = self.idom[cur.index()].expect("reachable");
        }
        cur == a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::prelude::*;

    /// entry → header → {body → header, exit}; classic while-loop shape.
    fn loop_cfg() -> (Module, FuncId) {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let header = b.create_block("header");
            let body = b.create_block("body");
            let exit = b.create_block("exit");
            let zero = b.const_i64(0);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(0));
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let one = b.const_i64(1);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to(exit);
            b.ret(None);
        }
        (m, fid)
    }

    #[test]
    fn loop_dominance() {
        let (m, fid) = loop_cfg();
        let dom = DomTree::compute(m.function(fid));
        let (entry, header, body, exit) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(header, body));
        assert!(dom.dominates(header, exit));
        assert!(!dom.dominates(body, exit));
        assert!(dom.dominates(body, body), "dominance is reflexive");
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(header), Some(entry));
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let dead = b.create_block("dead");
            b.ret(None);
            b.switch_to(dead);
            b.ret(None);
        }
        let dom = DomTree::compute(m.function(fid));
        assert!(dom.is_reachable(BlockId(0)));
        assert!(!dom.is_reachable(BlockId(1)));
        assert!(!dom.dominates(BlockId(0), BlockId(1)));
    }
}
