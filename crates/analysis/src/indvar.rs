//! Canonical induction variables and loop-bound discovery.
//!
//! The paper's pass looks ahead in an array by *adding an offset to an
//! induction variable* (§4.1), and clamps the offset value to the loop
//! bound so intermediate loads cannot fault (§4.2). This module recognises
//! both pieces:
//!
//! * [`InductionVar`]: a header phi of the form
//!   `i = phi [preheader: init], [latch: i ± step]` with constant step;
//! * [`LoopBound`]: for single-exit loops, the loop-invariant value the
//!   induction variable is compared against to stay in the loop, which
//!   bounds the indices the look-ahead code may touch.

use crate::loops::{LoopForest, LoopId};
use swpf_ir::{BinOp, ValueKind};
use swpf_ir::{Function, InstKind, Pred, ValueId};

/// A canonical induction variable of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InductionVar {
    /// The loop whose header holds the phi.
    pub in_loop: LoopId,
    /// The phi node (this is "the induction variable" as a value).
    pub phi: ValueId,
    /// Initial value flowing in from the preheader.
    pub init: ValueId,
    /// The update instruction (`add`/`sub` of the phi).
    pub next: ValueId,
    /// Signed per-iteration step.
    pub step: i64,
}

impl InductionVar {
    /// Whether this is the paper's "canonical form": counts upward by one.
    #[must_use]
    pub fn is_canonical(&self) -> bool {
        self.step == 1
    }
}

/// The loop-termination comparison of a single-exit loop, normalised so
/// that the induction variable (or its `next` value) is on the left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopBound {
    /// The induction variable this bound constrains (phi value).
    pub iv_phi: ValueId,
    /// Loop-invariant bound operand.
    pub bound: ValueId,
    /// Predicate under which the loop *continues*, with the IV on the lhs
    /// (e.g. `Slt` for `for (i = 0; i < n; i++)`).
    pub cont_pred: Pred,
    /// True when the comparison tests `iv.next` rather than the phi.
    pub compares_next: bool,
}

impl LoopBound {
    /// Whether the continuing predicate is strict (`<`, `>`), meaning the
    /// largest index the loop body observes is `bound - step_direction`.
    #[must_use]
    pub fn is_strict(&self) -> bool {
        matches!(
            self.cont_pred,
            Pred::Slt | Pred::Sgt | Pred::Ult | Pred::Ugt | Pred::Ne
        )
    }
}

/// Induction variables and bounds for every loop of a function.
#[derive(Debug, Clone, Default)]
pub struct IvAnalysis {
    ivs: Vec<InductionVar>,
    bounds: Vec<LoopBound>,
}

impl IvAnalysis {
    /// Find induction variables and bounds in all loops of `f`.
    #[must_use]
    pub fn compute(f: &Function, forest: &LoopForest) -> Self {
        let mut ivs = Vec::new();
        let mut bounds = Vec::new();
        for lid in forest.ids() {
            let l = forest.get(lid);
            let (Some(preheader), [latch]) = (l.preheader, l.latches.as_slice()) else {
                continue; // multi-latch or multi-entry: no canonical IV
            };
            for &v in &f.block(l.header).insts {
                let Some(InstKind::Phi { incomings }) = f.inst(v).map(|i| &i.kind) else {
                    break; // phis are a prefix of the block
                };
                if incomings.len() != 2 {
                    continue;
                }
                let mut init = None;
                let mut next = None;
                for &(pb, pv) in incomings {
                    if pb == preheader {
                        init = Some(pv);
                    } else if pb == *latch {
                        next = Some(pv);
                    }
                }
                let (Some(init), Some(next)) = (init, next) else {
                    continue;
                };
                let Some(step) = step_of(f, next, v) else {
                    continue;
                };
                ivs.push(InductionVar {
                    in_loop: lid,
                    phi: v,
                    init,
                    next,
                    step,
                });
            }
            // Bound: single exiting block whose condition compares an IV
            // (or its update) against a loop-invariant value.
            if let [exiting] = l.exiting.as_slice() {
                if let Some(b) = find_bound(f, forest, lid, *exiting, &ivs) {
                    bounds.push(b);
                }
            }
        }
        IvAnalysis { ivs, bounds }
    }

    /// All induction variables of loop `l`.
    pub fn ivs_of(&self, l: LoopId) -> impl Iterator<Item = &InductionVar> + '_ {
        self.ivs.iter().filter(move |iv| iv.in_loop == l)
    }

    /// The induction variable whose phi is `v`, if `v` is one.
    #[must_use]
    pub fn as_iv(&self, v: ValueId) -> Option<&InductionVar> {
        self.ivs.iter().find(|iv| iv.phi == v)
    }

    /// The bound constraining induction variable `phi`, if discovered.
    #[must_use]
    pub fn bound_of(&self, phi: ValueId) -> Option<&LoopBound> {
        self.bounds.iter().find(|b| b.iv_phi == phi)
    }

    /// All discovered induction variables.
    #[must_use]
    pub fn all(&self) -> &[InductionVar] {
        &self.ivs
    }
}

/// If `next` is `phi ± constant`, return the signed step.
fn step_of(f: &Function, next: ValueId, phi: ValueId) -> Option<i64> {
    let InstKind::Binary { op, lhs, rhs } = &f.inst(next)?.kind else {
        return None;
    };
    let const_of = |v: ValueId| f.constant(v).and_then(|c| c.as_int());
    match op {
        BinOp::Add => {
            if *lhs == phi {
                const_of(*rhs)
            } else if *rhs == phi {
                const_of(*lhs)
            } else {
                None
            }
        }
        BinOp::Sub if *lhs == phi => const_of(*rhs).map(i64::wrapping_neg),
        _ => None,
    }
}

/// Whether `v` is invariant with respect to loop `l`: a constant, an
/// argument, or an instruction defined outside the loop.
#[must_use]
pub fn is_loop_invariant(f: &Function, forest: &LoopForest, l: LoopId, v: ValueId) -> bool {
    match &f.value(v).kind {
        ValueKind::Arg { .. } | ValueKind::Const(_) => true,
        ValueKind::Inst(inst) => !forest.get(l).contains(inst.block),
    }
}

fn find_bound(
    f: &Function,
    forest: &LoopForest,
    lid: LoopId,
    exiting: swpf_ir::BlockId,
    ivs: &[InductionVar],
) -> Option<LoopBound> {
    let l = forest.get(lid);
    let term = f.block(exiting).last()?;
    let InstKind::CondBr {
        cond,
        then_bb,
        else_bb,
    } = &f.inst(term)?.kind
    else {
        return None;
    };
    let InstKind::ICmp { pred, lhs, rhs } = &f.inst(*cond)?.kind else {
        return None;
    };
    // Which arm stays in the loop?
    let then_in = l.contains(*then_bb);
    let else_in = l.contains(*else_bb);
    let cont_on_true = match (then_in, else_in) {
        (true, false) => true,
        (false, true) => false,
        _ => return None, // both arms inside (exit elsewhere) or malformed
    };
    // Normalise: IV-ish operand on the left, invariant bound on the right.
    let classify = |v: ValueId| -> Option<(ValueId, bool)> {
        for iv in ivs.iter().filter(|iv| iv.in_loop == lid) {
            if v == iv.phi {
                return Some((iv.phi, false));
            }
            if v == iv.next {
                return Some((iv.phi, true));
            }
        }
        None
    };
    let (iv_phi, compares_next, bound, pred_norm) = if let Some((phi, nxt)) = classify(*lhs) {
        (phi, nxt, *rhs, *pred)
    } else if let Some((phi, nxt)) = classify(*rhs) {
        (phi, nxt, *lhs, pred.swapped())
    } else {
        return None;
    };
    if !is_loop_invariant(f, forest, lid, bound) {
        return None;
    }
    let cont_pred = if cont_on_true {
        pred_norm
    } else {
        pred_norm.negated()
    };
    Some(LoopBound {
        iv_phi,
        bound,
        cont_pred,
        compares_next,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomTree;
    use swpf_ir::prelude::*;

    fn analyse(m: &Module, fid: FuncId) -> (LoopForest, IvAnalysis) {
        swpf_ir::verifier::verify_module(m).unwrap();
        let f = m.function(fid);
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        let ivs = IvAnalysis::compute(f, &forest);
        (forest, ivs)
    }

    /// `for (i = 0; i < n; i++)` with the test in the header.
    #[test]
    fn canonical_upcounting_loop() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(0));
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to(exit);
            b.ret(None);
        }
        let (forest, ivs) = analyse(&m, fid);
        assert_eq!(forest.len(), 1);
        let all = ivs.all();
        assert_eq!(all.len(), 1);
        let iv = all[0];
        assert_eq!(iv.step, 1);
        assert!(iv.is_canonical());
        let bound = ivs.bound_of(iv.phi).expect("bound found");
        assert_eq!(bound.cont_pred, Pred::Slt);
        assert!(!bound.compares_next);
        assert!(bound.is_strict());
        assert_eq!(bound.bound, ValueId(0), "bound is the argument n");
    }

    /// Do-while-shaped loop testing `i.next != n` in the latch.
    #[test]
    fn latch_tested_loop_compares_next() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let body = b.create_block("body");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(body);
            b.switch_to(body);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            let c = b.icmp(Pred::Ne, i2, b.arg(0));
            b.cond_br(c, body, exit);
            b.switch_to(exit);
            b.ret(None);
        }
        let (_, ivs) = analyse(&m, fid);
        let iv = ivs.all()[0];
        let bound = ivs.bound_of(iv.phi).expect("bound");
        assert!(bound.compares_next);
        assert_eq!(bound.cont_pred, Pred::Ne);
    }

    /// Down-counting loop `for (i = n; i > 0; i--)`.
    #[test]
    fn downcounting_loop_negative_step() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, b.arg(0))]);
            let c = b.icmp(Pred::Sgt, i, zero);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let i2 = b.sub(i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to(exit);
            b.ret(None);
        }
        let (_, ivs) = analyse(&m, fid);
        let iv = ivs.all()[0];
        assert_eq!(iv.step, -1);
        assert!(!iv.is_canonical());
        let bound = ivs.bound_of(iv.phi).expect("bound");
        assert_eq!(bound.cont_pred, Pred::Sgt);
    }

    /// Bound comparison written backwards (`n > i`) still normalises.
    #[test]
    fn swapped_comparison_normalises() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Sgt, b.arg(0), i); // n > i
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to(exit);
            b.ret(None);
        }
        let (_, ivs) = analyse(&m, fid);
        let bound = ivs.bound_of(ivs.all()[0].phi).expect("bound");
        assert_eq!(bound.cont_pred, Pred::Slt, "normalised to iv < n");
    }

    /// A phi that is not an arithmetic recurrence is not an IV.
    #[test]
    fn data_phi_is_not_an_iv() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64, Type::Ptr], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            // Pointer-chasing phi: next = load(cur) — not an IV.
            let p = b.phi(Type::Ptr, &[(entry, b.arg(1))]);
            let c = b.icmp(Pred::Slt, i, b.arg(0));
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let nextp = b.load(Type::Ptr, p);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(p, body, nextp);
            b.br(header);
            b.switch_to(exit);
            b.ret(None);
        }
        let (_, ivs) = analyse(&m, fid);
        assert_eq!(ivs.all().len(), 1, "only the counter is an IV");
        assert_eq!(ivs.all()[0].step, 1);
    }

    #[test]
    fn loop_invariance_classification() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], None);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            let pre = b.add(b.arg(0), one); // defined before the loop
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, b.arg(0));
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let varying = b.add(i, pre); // defined inside
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to(exit);
            b.ret(None);
            // Checks.
            let _ = b;
            let f = m.function(fid);
            let dom = DomTree::compute(f);
            let forest = LoopForest::compute(f, &dom);
            let l = forest.innermost(BlockId(2)).unwrap();
            assert!(is_loop_invariant(f, &forest, l, pre));
            assert!(is_loop_invariant(f, &forest, l, zero));
            assert!(is_loop_invariant(f, &forest, l, f.arg(0)));
            assert!(!is_loop_invariant(f, &forest, l, varying));
            assert!(!is_loop_invariant(f, &forest, l, i));
        }
    }
}
