//! Composable cleanup passes: local CSE, DCE, and verification.
//!
//! These are the paper's "later passes clean it up" step made explicit
//! and measurable. The prefetch generator clones address computations
//! per chain position, so two prefetch sequences over the same base
//! recompute identical geps, look-ahead adds, and clamp limits —
//! redundancy the paper leaves to `-O3`. [`LocalCse`] merges those
//! duplicates within each block; [`Dce`] then sweeps computations whose
//! only consumers were merged away. Both passes are *prefetch-neutral*:
//! they never touch memory operations (loads, stores, prefetches),
//! phis, calls, allocs, or terminators, so the architectural behaviour
//! and every emitted prefetch survive — only redundant arithmetic goes.

use crate::manager::{AnalysisManager, FunctionPass, ModulePass, PassEffect};
use std::collections::{HashMap, HashSet};
use swpf_ir::{BinOp, CastOp, FuncId, InstKind, Module, Pred, Type, ValueId};

/// The CSE value-numbering key: a pure instruction's operation with its
/// (canonicalised) operands. Shared with the dominator-scoped GVN pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Key {
    Bin(BinOp, ValueId, ValueId),
    Cmp(Pred, ValueId, ValueId),
    Sel(ValueId, ValueId, ValueId),
    Cast(CastOp, ValueId, Type),
    Gep(ValueId, ValueId, u64, u64),
}

/// The value-numbering key of `v`, with operands rewritten through the
/// current duplicate map — or `None` for instructions CSE must not
/// touch (memory operations, phis, calls, allocs, terminators).
///
/// Integer division/remainder *are* keyed: merging two identical
/// divisions preserves trap behaviour exactly (same operands, same
/// trap, and the kept occurrence is the earlier one).
pub(crate) fn key_of(kind: &InstKind, canon: &HashMap<ValueId, ValueId>) -> Option<Key> {
    let c = |v: ValueId| canon.get(&v).copied().unwrap_or(v);
    match kind {
        InstKind::Binary { op, lhs, rhs } => Some(Key::Bin(*op, c(*lhs), c(*rhs))),
        InstKind::ICmp { pred, lhs, rhs } => Some(Key::Cmp(*pred, c(*lhs), c(*rhs))),
        InstKind::Select {
            cond,
            then_val,
            else_val,
        } => Some(Key::Sel(c(*cond), c(*then_val), c(*else_val))),
        InstKind::Cast { op, val, to } => Some(Key::Cast(*op, c(*val), *to)),
        InstKind::Gep {
            base,
            index,
            elem_size,
            offset,
        } => Some(Key::Gep(c(*base), c(*index), *elem_size, *offset)),
        _ => None,
    }
}

/// Local (per-block) common-subexpression elimination.
///
/// Scans each block in order, value-numbering the pure instructions;
/// a later instruction computing an already-available value is removed
/// and its uses (anywhere in the function — SSA guarantees they are
/// dominated by the block) are rewritten to the first occurrence.
#[derive(Debug, Default)]
pub struct LocalCse {
    /// Instructions removed across every `run` call.
    pub removed: usize,
}

impl FunctionPass for LocalCse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&mut self, m: &mut Module, fid: FuncId, _am: &mut AnalysisManager) -> PassEffect {
        let f = m.function_mut(fid);
        // Duplicate → first-occurrence, accumulated across blocks. Keys
        // canonicalise operands through this map, so a chain of
        // duplicates (dup-of-dup) resolves to the first occurrence in
        // one scan.
        let mut canon: HashMap<ValueId, ValueId> = HashMap::new();
        for b in f.block_ids().collect::<Vec<_>>() {
            let mut seen: HashMap<Key, ValueId> = HashMap::new();
            for &v in &f.block(b).insts.clone() {
                let Some(inst) = f.inst(v) else { continue };
                let Some(key) = key_of(&inst.kind, &canon) else {
                    continue;
                };
                match seen.get(&key) {
                    Some(&orig) => {
                        canon.insert(v, orig);
                    }
                    None => {
                        seen.insert(key, v);
                    }
                }
            }
        }
        if canon.is_empty() {
            return PassEffect::unchanged();
        }
        // Rewrite every use, then detach the duplicates from their
        // blocks (arena slots stay; the printer ignores detached
        // values).
        for v in f.all_insts().collect::<Vec<_>>() {
            if let Some(inst) = f.inst_mut(v) {
                for (&from, &to) in &canon {
                    inst.replace_uses(from, to);
                }
            }
        }
        let mut removed = 0usize;
        for b in f.block_ids().collect::<Vec<_>>() {
            let insts = &mut f.block_mut(b).insts;
            let before = insts.len();
            insts.retain(|v| !canon.contains_key(v));
            removed += before - insts.len();
        }
        self.removed += removed;
        swpf_obs::count("pass.cse.removed", removed as u64);
        PassEffect::removed(removed).preserving_cfg()
    }
}

/// Whether DCE may remove an unused `kind`.
///
/// Only trap-free pure computations qualify: integer/float arithmetic
/// except division and remainder (which trap on zero and must keep
/// their trap), comparisons, selects, casts, and address computations.
/// Memory operations, allocs (they define the address space layout),
/// phis, calls, and terminators are never removed. The same rule
/// doubles as LICM's speculation-safety test: an instruction this
/// function admits may execute unconditionally without observable
/// effect.
pub(crate) fn dce_removable(kind: &InstKind) -> bool {
    match kind {
        InstKind::Binary { op, .. } => !matches!(
            op,
            BinOp::Sdiv | BinOp::Udiv | BinOp::Srem | BinOp::Urem | BinOp::Fdiv
        ),
        InstKind::ICmp { .. } | InstKind::Select { .. } | InstKind::Cast { .. } => true,
        InstKind::Gep { .. } => true,
        _ => false,
    }
}

/// Dead-code elimination: iteratively removes pure, trap-free
/// instructions with no remaining uses.
#[derive(Debug, Default)]
pub struct Dce {
    /// Instructions removed across every `run` call.
    pub removed: usize,
}

impl FunctionPass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&mut self, m: &mut Module, fid: FuncId, _am: &mut AnalysisManager) -> PassEffect {
        let f = m.function_mut(fid);
        let mut removed = 0usize;
        loop {
            let mut used: HashSet<ValueId> = HashSet::new();
            let mut ops = Vec::new();
            for v in f.all_insts() {
                if let Some(inst) = f.inst(v) {
                    ops.clear();
                    inst.operands_into(&mut ops);
                    used.extend(ops.iter().copied());
                }
            }
            let dead: Vec<ValueId> = f
                .all_insts()
                .filter(|&v| {
                    !used.contains(&v) && f.inst(v).is_some_and(|inst| dce_removable(&inst.kind))
                })
                .collect();
            if dead.is_empty() {
                break;
            }
            let dead: HashSet<ValueId> = dead.into_iter().collect();
            for b in f.block_ids().collect::<Vec<_>>() {
                f.block_mut(b).insts.retain(|v| !dead.contains(v));
            }
            removed += dead.len();
        }
        self.removed += removed;
        swpf_obs::count("pass.dce.removed", removed as u64);
        PassEffect::removed(removed).preserving_cfg()
    }
}

/// A module pass that checks IR invariants and changes nothing — the
/// explicit form of the verify-between-passes mode, placeable anywhere
/// in a pipeline spec (`"swpf,verify,cse"`).
#[derive(Debug, Default, Clone, Copy)]
pub struct VerifyPass;

impl ModulePass for VerifyPass {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn run(&mut self, m: &mut Module, _am: &mut AnalysisManager) -> Result<PassEffect, String> {
        let errs = swpf_ir::verifier::verify_module_all(m);
        if errs.is_empty() {
            Ok(PassEffect::unchanged())
        } else {
            Err(errs
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("; "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::PassManager;
    use swpf_ir::parser::parse_module;
    use swpf_ir::printer::print_module;

    fn run_pass(m: &mut Module, pass: impl FunctionPass + 'static) -> usize {
        let mut am = AnalysisManager::new();
        let mut pm = PassManager::new().verify_between(true);
        pm.add_function_pass(Box::new(pass));
        let runs = pm.run(m, &mut am).expect("pipeline verifies");
        runs[0].removed_insts
    }

    #[test]
    fn cse_merges_duplicate_geps_and_adds() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: ptr, %1: i64) -> i64 {\nbb0:\n  \
             %2: ptr = gep %0, %1 x 8\n  \
             %3: ptr = gep %0, %1 x 8\n  \
             %4: i64 = add %1, %1\n  \
             %5: i64 = add %1, %1\n  \
             %6: i64 = load i64, %2\n  \
             %7: i64 = load i64, %3\n  \
             %8: i64 = add %4, %5\n  \
             %9: i64 = add %6, %7\n  \
             %10: i64 = add %8, %9\n  \
             ret %10\n}\n",
        )
        .unwrap();
        let removed = run_pass(&mut m, LocalCse::default());
        assert_eq!(removed, 2, "duplicate gep and add merged; loads kept");
        let text = print_module(&m);
        assert_eq!(text.matches("gep").count(), 1, "{text}");
        assert_eq!(text.matches("load").count(), 2, "loads are never merged");
    }

    #[test]
    fn cse_resolves_chains_of_duplicates() {
        // %4 duplicates %2; %5 uses %4 and duplicates %3 (which uses
        // %2) only after canonicalisation.
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64) -> i64 {\nbb0:\n  \
             %1: i64 = add %0, %0\n  \
             %2: i64 = add %1, %0\n  \
             %3: i64 = add %0, %0\n  \
             %4: i64 = add %3, %0\n  \
             %5: i64 = add %2, %4\n  \
             ret %5\n}\n",
        )
        .unwrap();
        let removed = run_pass(&mut m, LocalCse::default());
        assert_eq!(removed, 2);
        let text = print_module(&m);
        assert_eq!(text.matches("add").count(), 3, "{text}");
    }

    #[test]
    fn cse_is_block_local() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64) -> i64 {\nbb0:\n  \
             %1: i64 = add %0, %0\n  br bb1\nbb1:\n  \
             %2: i64 = add %0, %0\n  ret %2\n}\n",
        )
        .unwrap();
        let removed = run_pass(&mut m, LocalCse::default());
        assert_eq!(removed, 0, "cross-block duplicates are left alone");
    }

    #[test]
    fn dce_sweeps_dead_chains_but_keeps_traps_and_memory() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: ptr, %1: i64) -> i64 {\nbb0:\n  \
             %2: i64 = add %1, %1\n  \
             %3: i64 = mul %2, %1\n  \
             %4: i64 = sdiv %1, %1\n  \
             %5: ptr = gep %0, %1 x 8\n  \
             %6: i64 = load i64, %5\n  \
             ret %6\n}\n",
        )
        .unwrap();
        let removed = run_pass(&mut m, Dce::default());
        // %3 is dead, then %2 becomes dead: both go. %4 could trap and
        // stays; the load chain is live.
        assert_eq!(removed, 2);
        let text = print_module(&m);
        assert!(text.contains("sdiv"), "{text}");
        assert!(text.contains("load"), "{text}");
        assert!(!text.contains("mul"), "{text}");
    }

    #[test]
    fn dce_keeps_unused_prefetch_address_chains_alive_through_the_prefetch() {
        // The prefetch is a memory op: it and its gep must survive even
        // though nothing consumes a prefetch result.
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: ptr, %1: i64) -> void {\nbb0:\n  \
             %2: i64 = add %1, %1\n  \
             %3: ptr = gep %0, %2 x 8\n  \
             prefetch %3\n  \
             ret\n}\n",
        )
        .unwrap();
        let removed = run_pass(&mut m, Dce::default());
        assert_eq!(removed, 0);
        assert!(print_module(&m).contains("prefetch"));
    }

    #[test]
    fn verify_pass_flags_broken_modules() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64) -> i64 {\nbb0:\n  \
             %1: i64 = add %0, %0\n  ret %1\n}\n",
        )
        .unwrap();
        let mut am = AnalysisManager::new();
        assert!(VerifyPass.run(&mut m, &mut am).is_ok());
        // Break it: drop the terminator.
        let fid = m.find_function("f").unwrap();
        let entry = m.function(fid).entry();
        m.function_mut(fid).block_mut(entry).insts.pop();
        assert!(VerifyPass.run(&mut m, &mut am).is_err());
    }
}
