//! Global optimization passes: dominator-scoped GVN, sparse
//! conditional constant propagation, and loop-invariant code motion.
//!
//! These are the cross-block half of the paper's "later passes clean it
//! up" contract. The prefetch generator clones address chains per
//! look-ahead position, and [`crate::cleanup::LocalCse`] only merges
//! duplicates within one block — redundancy between the loop header,
//! the body, and the cloned chains survives it. The passes here close
//! that gap over the analyses the manager already caches:
//!
//! * [`Gvn`] — global value numbering scoped by the dominator tree
//!   (`AnalysisManager::dom`). A pure instruction whose value is
//!   already available in a dominating block is removed and its uses
//!   rewritten to the dominating occurrence. Commutative operands are
//!   canonicalised, so GVN strictly subsumes the block-local CSE.
//! * [`Sccp`] — sparse conditional constant propagation: the classic
//!   Wegman–Zadeck lattice over the existing CFG, folding instructions
//!   proven constant and rewriting conditional branches whose condition
//!   is constant. Trap-preserving: a division is folded only when its
//!   divisor is a *non-zero* constant, so every runtime trap survives.
//! * [`Licm`] — loop-invariant code motion over the cached loop forest
//!   (`AnalysisManager::loops`). Hoists only speculation-safe
//!   instructions (the same fault-avoidance rule the prefetch pass and
//!   DCE encode: pure, non-trapping, no memory access) whose operands
//!   are all defined outside the loop, into the loop preheader.
//!
//! Like the cleanup passes, all three are *prefetch-neutral*: memory
//! operations — loads, stores, and every emitted prefetch — are never
//! folded, merged, or moved.

use crate::cleanup::{dce_removable, key_of, Key};
use crate::manager::{AnalysisManager, FunctionPass, PassEffect};
use std::collections::HashMap;
use swpf_ir::{
    BinOp, BlockId, CastOp, Constant, FuncId, InstKind, Module, Pred, Type, ValueId, ValueKind,
};

/// Canonicalise a value-numbering key: sort the operands of commutative
/// operators so `add %a, %b` and `add %b, %a` number identically.
fn canonical(key: Key) -> Key {
    match key {
        Key::Bin(op, a, b)
            if b < a
                && matches!(
                    op,
                    BinOp::Add
                        | BinOp::Mul
                        | BinOp::And
                        | BinOp::Or
                        | BinOp::Xor
                        | BinOp::Fadd
                        | BinOp::Fmul
                ) =>
        {
            Key::Bin(op, b, a)
        }
        Key::Cmp(pred, a, b) if b < a && matches!(pred, Pred::Eq | Pred::Ne) => {
            Key::Cmp(pred, b, a)
        }
        other => other,
    }
}

/// Dominator-scoped global value numbering.
///
/// Walks the dominator tree depth-first with a scoped table of
/// available expressions: an instruction whose (canonicalised) key is
/// already bound in a dominating block — or earlier in its own block —
/// is redundant. Redundant instructions are detached and every use is
/// rewritten to the dominating occurrence; SSA guarantees the rewrite
/// is valid because the leader dominates the duplicate, which dominates
/// all of its uses. Delete-only and CFG-preserving, so the driver keeps
/// dominators and loops cached.
#[derive(Debug, Default)]
pub struct Gvn {
    /// Instructions removed across every `run` call.
    pub removed: usize,
}

impl FunctionPass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }

    fn run(&mut self, m: &mut Module, fid: FuncId, am: &mut AnalysisManager) -> PassEffect {
        let dom = am.dom(m.function(fid), fid);
        let f = m.function_mut(fid);

        // Dominator-tree children lists (reachable blocks only).
        let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); f.num_blocks()];
        for b in f.block_ids() {
            if b != f.entry() {
                if let Some(p) = dom.idom(b) {
                    children[p.index()].push(b);
                }
            }
        }

        // DFS with an undo log: keys bound while visiting a subtree are
        // unbound on the way back up, so availability is exactly
        // "bound in a dominator".
        let mut canon: HashMap<ValueId, ValueId> = HashMap::new();
        let mut table: HashMap<Key, ValueId> = HashMap::new();
        enum Step {
            Enter(BlockId),
            Exit(usize),
        }
        let mut undo: Vec<Key> = Vec::new();
        let mut stack = vec![Step::Enter(f.entry())];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(b) => {
                    let mark = undo.len();
                    for &v in &f.block(b).insts.clone() {
                        let Some(inst) = f.inst(v) else { continue };
                        let Some(key) = key_of(&inst.kind, &canon).map(canonical) else {
                            continue;
                        };
                        match table.get(&key) {
                            Some(&leader) => {
                                canon.insert(v, leader);
                            }
                            None => {
                                table.insert(key, v);
                                undo.push(key);
                            }
                        }
                    }
                    stack.push(Step::Exit(mark));
                    for &c in &children[b.index()] {
                        stack.push(Step::Enter(c));
                    }
                }
                Step::Exit(mark) => {
                    for key in undo.drain(mark..) {
                        table.remove(&key);
                    }
                }
            }
        }
        if canon.is_empty() {
            return PassEffect::unchanged();
        }

        for v in f.all_insts().collect::<Vec<_>>() {
            if let Some(inst) = f.inst_mut(v) {
                for (&from, &to) in &canon {
                    inst.replace_uses(from, to);
                }
            }
        }
        let mut removed = 0usize;
        for b in f.block_ids().collect::<Vec<_>>() {
            let insts = &mut f.block_mut(b).insts;
            let before = insts.len();
            insts.retain(|v| !canon.contains_key(v));
            removed += before - insts.len();
        }
        self.removed += removed;
        swpf_obs::count("pass.gvn.removed", removed as u64);
        PassEffect::removed(removed).preserving_cfg()
    }
}

/// The SCCP lattice: unknown (optimistic), a proven constant, or
/// runtime-variable.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Lat {
    Top,
    Const(Constant),
    Bottom,
}

impl Lat {
    fn as_const(self) -> Option<Constant> {
        match self {
            Lat::Const(c) => Some(c),
            _ => None,
        }
    }
}

fn const_eq(a: Constant, b: Constant) -> bool {
    match (a, b) {
        (Constant::Int(x, tx), Constant::Int(y, ty)) => x == y && tx == ty,
        (Constant::Float(x), Constant::Float(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

fn meet(a: Lat, b: Lat) -> Lat {
    match (a, b) {
        (Lat::Top, x) | (x, Lat::Top) => x,
        (Lat::Bottom, _) | (_, Lat::Bottom) => Lat::Bottom,
        (Lat::Const(x), Lat::Const(y)) => {
            if const_eq(x, y) {
                Lat::Const(x)
            } else {
                Lat::Bottom
            }
        }
    }
}

/// Fold an integer binary operation over the *register* values exactly
/// as the interpreter evaluates it (`swpf_ir`'s `eval_binary`): plain
/// wrapping `i64` arithmetic, shift counts masked to 6 bits. Returns
/// `None` for a division or remainder with zero divisor — that
/// instruction traps at runtime and must survive the pass.
fn fold_int_binary(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Sdiv => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Udiv => {
            if b == 0 {
                return None;
            }
            ((a as u64) / (b as u64)) as i64
        }
        BinOp::Srem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::Urem => {
            if b == 0 {
                return None;
            }
            ((a as u64) % (b as u64)) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Lshr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        BinOp::Ashr => a.wrapping_shr(b as u32 & 63),
        BinOp::Fadd | BinOp::Fsub | BinOp::Fmul | BinOp::Fdiv => unreachable!("float op"),
    })
}

fn fold_icmp(pred: Pred, a: i64, b: i64) -> bool {
    let (ua, ub) = (a as u64, b as u64);
    match pred {
        Pred::Eq => a == b,
        Pred::Ne => a != b,
        Pred::Slt => a < b,
        Pred::Sle => a <= b,
        Pred::Sgt => a > b,
        Pred::Sge => a >= b,
        Pred::Ult => ua < ub,
        Pred::Ule => ua <= ub,
        Pred::Ugt => ua > ub,
        Pred::Uge => ua >= ub,
    }
}

/// Fold a cast exactly as the classic interpreter evaluates it:
/// truncation masks to the target width, sign extension re-signs from
/// the *source* width, zero extension and pointer casts are identity on
/// the canonical register value.
fn fold_cast(op: CastOp, x: i64, from_bits: u32, to: Type) -> i64 {
    match op {
        CastOp::Trunc => {
            let bits = to.bits();
            let mask = if bits >= 64 {
                -1i64
            } else {
                (1i64 << bits) - 1
            };
            x & mask
        }
        CastOp::Zext | CastOp::Sext => {
            if op == CastOp::Sext && from_bits < 64 {
                let shift = 64 - from_bits;
                (x << shift) >> shift
            } else {
                x
            }
        }
        CastOp::IntToPtr | CastOp::PtrToInt => x,
    }
}

/// Sparse conditional constant propagation.
///
/// Runs the Wegman–Zadeck worklist to a fixpoint — value lattice plus
/// executable-edge tracking, so constants propagate through phis whose
/// dead incoming edges are ignored — then folds: instructions proven
/// constant are replaced by interned IR constants and detached, and a
/// conditional branch whose condition is a proven constant becomes an
/// unconditional branch (the dead edge is removed from the target
/// phis). Trap preservation is strict: divisions fold only when the
/// divisor is a non-zero constant, loads and calls never fold, and
/// code made unreachable by branch folding was already unreachable in
/// every execution. When no branch folds, the CFG is untouched and the
/// pass declares CFG preservation.
#[derive(Debug, Default)]
pub struct Sccp {
    /// Instructions folded to constants across every `run` call.
    pub folded: usize,
    /// Conditional branches rewritten to unconditional ones.
    pub folded_branches: usize,
}

impl Sccp {
    fn eval(
        f: &swpf_ir::Function,
        lat: &[Lat],
        exec_edge: &dyn Fn(BlockId, BlockId) -> bool,
        v: ValueId,
    ) -> Lat {
        let inst = match f.inst(v) {
            Some(i) => i,
            None => return Lat::Bottom,
        };
        let get = |x: ValueId| lat[x.index()];
        match &inst.kind {
            InstKind::Binary { op, lhs, rhs } => {
                let (a, b) = (get(*lhs), get(*rhs));
                if a == Lat::Bottom || b == Lat::Bottom {
                    return Lat::Bottom;
                }
                let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) else {
                    return Lat::Top;
                };
                if op.is_float() {
                    let (Constant::Float(x), Constant::Float(y)) = (ca, cb) else {
                        return Lat::Bottom;
                    };
                    let r = match op {
                        BinOp::Fadd => x + y,
                        BinOp::Fsub => x - y,
                        BinOp::Fmul => x * y,
                        BinOp::Fdiv => x / y,
                        _ => unreachable!(),
                    };
                    return Lat::Const(Constant::Float(r));
                }
                let (Constant::Int(x, _), Constant::Int(y, _)) = (ca, cb) else {
                    return Lat::Bottom;
                };
                match fold_int_binary(*op, x, y) {
                    Some(r) => match f.value(v).ty {
                        Some(ty) => Lat::Const(Constant::Int(r, ty)),
                        None => Lat::Bottom,
                    },
                    // Constant zero divisor: traps at runtime, keep.
                    None => Lat::Bottom,
                }
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                let (a, b) = (get(*lhs), get(*rhs));
                if a == Lat::Bottom || b == Lat::Bottom {
                    return Lat::Bottom;
                }
                let (Some(Constant::Int(x, _)), Some(Constant::Int(y, _))) =
                    (a.as_const(), b.as_const())
                else {
                    return Lat::Top;
                };
                Lat::Const(Constant::Int(i64::from(fold_icmp(*pred, x, y)), Type::I1))
            }
            InstKind::Select {
                cond,
                then_val,
                else_val,
            } => match get(*cond) {
                Lat::Top => Lat::Top,
                Lat::Const(Constant::Int(c, _)) => {
                    if c != 0 {
                        get(*then_val)
                    } else {
                        get(*else_val)
                    }
                }
                Lat::Const(_) => Lat::Bottom,
                Lat::Bottom => meet(get(*then_val), get(*else_val)),
            },
            InstKind::Cast { op, val, to } => match get(*val) {
                Lat::Top => Lat::Top,
                Lat::Const(Constant::Int(x, _)) => {
                    let from_bits = f.value(*val).ty.map_or(64, Type::bits);
                    Lat::Const(Constant::Int(fold_cast(*op, x, from_bits, *to), *to))
                }
                _ => Lat::Bottom,
            },
            InstKind::Phi { incomings } => {
                let mut acc = Lat::Top;
                for &(pb, pv) in incomings {
                    if exec_edge(pb, inst.block) {
                        acc = meet(acc, get(pv));
                    }
                }
                acc
            }
            // Memory, allocation, address computation over runtime
            // pointers, and calls are never folded.
            _ => Lat::Bottom,
        }
    }
}

impl FunctionPass for Sccp {
    fn name(&self) -> &'static str {
        "sccp"
    }

    fn run(&mut self, m: &mut Module, fid: FuncId, _am: &mut AnalysisManager) -> PassEffect {
        let f = m.function_mut(fid);
        let nv = f.num_values();
        let nb = f.num_blocks();

        // Initial lattice: arguments are runtime-variable, IR constants
        // are themselves, instruction results start optimistic.
        let mut lat = vec![Lat::Top; nv];
        for (i, slot) in lat.iter_mut().enumerate() {
            match &f.value(ValueId(i as u32)).kind {
                ValueKind::Arg { .. } => *slot = Lat::Bottom,
                ValueKind::Const(c) => *slot = Lat::Const(*c),
                ValueKind::Inst(_) => {}
            }
        }

        // Users of every value, for sparse propagation.
        let mut users: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
        let mut ops = Vec::new();
        for v in f.all_insts() {
            if let Some(inst) = f.inst(v) {
                ops.clear();
                inst.operands_into(&mut ops);
                for &op in &ops {
                    users.entry(op).or_default().push(v);
                }
            }
        }

        let mut exec_block = vec![false; nb];
        let mut exec_edges: Vec<(BlockId, BlockId)> = Vec::new();
        let mut pending: Vec<ValueId> = Vec::new();
        exec_block[f.entry().index()] = true;
        pending.extend(f.block(f.entry()).insts.iter().copied());

        while let Some(v) = pending.pop() {
            let inst = f.inst(v).expect("placed instruction");
            let b = inst.block;
            if !exec_block[b.index()] {
                continue;
            }
            // Terminators steer edge executability rather than the
            // value lattice.
            match &inst.kind {
                InstKind::Br { target } => {
                    mark_edge(
                        f,
                        &mut exec_edges,
                        &mut exec_block,
                        &mut pending,
                        b,
                        *target,
                    );
                    continue;
                }
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    match lat[cond.index()] {
                        // Unknown yet: no edge executes; the branch
                        // re-evaluates when the condition lowers (it is
                        // a user of the condition).
                        Lat::Top => {}
                        Lat::Const(Constant::Int(c, _)) => {
                            let t = if c != 0 { *then_bb } else { *else_bb };
                            mark_edge(f, &mut exec_edges, &mut exec_block, &mut pending, b, t);
                        }
                        _ => {
                            mark_edge(
                                f,
                                &mut exec_edges,
                                &mut exec_block,
                                &mut pending,
                                b,
                                *then_bb,
                            );
                            mark_edge(
                                f,
                                &mut exec_edges,
                                &mut exec_block,
                                &mut pending,
                                b,
                                *else_bb,
                            );
                        }
                    }
                    continue;
                }
                _ => {}
            }
            let exec_edge =
                |p: BlockId, s: BlockId| exec_edges.iter().any(|&(a, c)| a == p && c == s);
            let new = Self::eval(f, &lat, &exec_edge, v);
            let lowered = match (lat[v.index()], new) {
                (Lat::Top, Lat::Top) => false,
                (Lat::Top, _) => true,
                (Lat::Const(_), Lat::Bottom) => true,
                (Lat::Const(a), Lat::Const(b)) => !const_eq(a, b),
                _ => false,
            };
            if lowered {
                lat[v.index()] = meet(lat[v.index()], new);
                if let Some(us) = users.get(&v) {
                    pending.extend(us.iter().copied());
                }
            }
        }

        // --- transform -----------------------------------------------------
        // Fold instructions proven constant (pure kinds only; a folded
        // division is guaranteed non-trapping because a zero divisor
        // lowers to Bottom above).
        let mut folds: Vec<(ValueId, Constant)> = Vec::new();
        for v in f.all_insts().collect::<Vec<_>>() {
            let Some(inst) = f.inst(v) else { continue };
            if !exec_block[inst.block.index()] {
                continue;
            }
            let foldable = matches!(
                inst.kind,
                InstKind::Binary { .. }
                    | InstKind::ICmp { .. }
                    | InstKind::Select { .. }
                    | InstKind::Cast { .. }
                    | InstKind::Phi { .. }
            );
            if !foldable {
                continue;
            }
            if let Lat::Const(c) = lat[v.index()] {
                folds.push((v, c));
            }
        }
        let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
        for &(v, c) in &folds {
            let cv = f.add_const(c);
            replace.insert(v, cv);
        }
        if !replace.is_empty() {
            for v in f.all_insts().collect::<Vec<_>>() {
                if let Some(inst) = f.inst_mut(v) {
                    for (&from, &to) in &replace {
                        inst.replace_uses(from, to);
                    }
                }
            }
            for b in f.block_ids().collect::<Vec<_>>() {
                f.block_mut(b).insts.retain(|v| !replace.contains_key(v));
            }
        }
        let folded = folds.len();

        // Fold conditional branches with a proven-constant condition.
        let mut folded_branches = 0usize;
        for b in f.block_ids().collect::<Vec<_>>() {
            if !exec_block[b.index()] {
                continue;
            }
            let Some(term) = f.block(b).last() else {
                continue;
            };
            let Some(InstKind::CondBr {
                cond,
                then_bb,
                else_bb,
            }) = f.inst(term).map(|i| i.kind.clone())
            else {
                continue;
            };
            // The condition may by now be an interned constant (its
            // index possibly beyond the pre-transform lattice) or a
            // value the lattice proved constant; read whichever holds.
            let c = match f.constant(cond) {
                Some(Constant::Int(c, _)) => c,
                Some(Constant::Float(_)) => continue,
                None => match lat.get(cond.index()) {
                    Some(&Lat::Const(Constant::Int(c, _))) => c,
                    _ => continue,
                },
            };
            let (taken, dead) = if c != 0 {
                (then_bb, else_bb)
            } else {
                (else_bb, then_bb)
            };
            if let Some(inst) = f.inst_mut(term) {
                inst.kind = InstKind::Br { target: taken };
            }
            if dead != taken {
                // The edge b → dead is gone; its phi incomings go too.
                for &pv in &f.block(dead).insts.clone() {
                    if let Some(inst) = f.inst_mut(pv) {
                        if let InstKind::Phi { incomings } = &mut inst.kind {
                            incomings.retain(|&(pb, _)| pb != b);
                        }
                    }
                }
            }
            folded_branches += 1;
        }

        self.folded += folded;
        self.folded_branches += folded_branches;
        swpf_obs::count("pass.sccp.folded", (folded + folded_branches) as u64);
        if folded == 0 && folded_branches == 0 {
            return PassEffect::unchanged();
        }
        let effect = PassEffect {
            changed: true,
            removed_insts: folded,
            preserves_cfg: false,
        };
        if folded_branches == 0 {
            effect.preserving_cfg()
        } else {
            effect
        }
    }
}

/// Mark edge `from → to` executable; on a block's first activation its
/// instructions join the evaluation list, on a repeat activation only
/// the target's phis re-evaluate (a new incoming edge can lower them).
fn mark_edge(
    f: &swpf_ir::Function,
    exec_edges: &mut Vec<(BlockId, BlockId)>,
    exec_block: &mut [bool],
    pending: &mut Vec<ValueId>,
    from: BlockId,
    to: BlockId,
) {
    if exec_edges.iter().any(|&(a, b)| a == from && b == to) {
        return;
    }
    exec_edges.push((from, to));
    if exec_block[to.index()] {
        for &v in &f.block(to).insts {
            if matches!(f.inst(v).map(|i| &i.kind), Some(InstKind::Phi { .. })) {
                pending.push(v);
            }
        }
    } else {
        exec_block[to.index()] = true;
        pending.extend(f.block(to).insts.iter().copied());
    }
}

/// Loop-invariant code motion.
///
/// For every natural loop with a preheader, hoists instructions that
/// are (a) speculation-safe under the prefetch pass's fault-avoidance
/// rule — pure and non-trapping, so executing them on loop-skipping
/// paths is unobservable — and (b) loop-invariant: every operand is a
/// constant, an argument, or defined outside the loop (including
/// operands hoisted earlier; the sweep iterates to a fixpoint so
/// invariant chains move together). Hoisted instructions land before
/// the preheader terminator in their original relative order. Loops
/// without a unique outside predecessor are skipped. Move-only and
/// CFG-preserving.
#[derive(Debug, Default)]
pub struct Licm {
    /// Instructions hoisted across every `run` call.
    pub hoisted: usize,
}

impl FunctionPass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&mut self, m: &mut Module, fid: FuncId, am: &mut AnalysisManager) -> PassEffect {
        let loops = am.loops(m.function(fid), fid);
        let f = m.function_mut(fid);

        // Innermost first: an instruction hoisted to an inner preheader
        // that is still inside an outer loop gets a second chance when
        // the outer loop is processed.
        let mut order: Vec<_> = loops.ids().collect();
        order.sort_by_key(|&l| std::cmp::Reverse(loops.get(l).depth));

        let mut hoisted = 0usize;
        for lid in order {
            let lp = loops.get(lid);
            let Some(ph) = lp.preheader else { continue };
            let Some(ph_term) = f.block(ph).last() else {
                continue;
            };
            loop {
                let mut moved_this_sweep = false;
                for &b in &lp.blocks {
                    for &v in &f.block(b).insts.clone() {
                        let Some(inst) = f.inst(v) else { continue };
                        if !dce_removable(&inst.kind) {
                            continue;
                        }
                        let invariant = inst.operands().iter().all(|&op| match &f.value(op).kind {
                            ValueKind::Arg { .. } | ValueKind::Const(_) => true,
                            ValueKind::Inst(def) => !lp.contains(def.block),
                        });
                        if !invariant {
                            continue;
                        }
                        f.block_mut(b).insts.retain(|&x| x != v);
                        f.insert_before(ph_term, v);
                        hoisted += 1;
                        moved_this_sweep = true;
                    }
                }
                if !moved_this_sweep {
                    break;
                }
            }
        }

        self.hoisted += hoisted;
        swpf_obs::count("pass.licm.hoisted", hoisted as u64);
        if hoisted == 0 {
            PassEffect::unchanged()
        } else {
            PassEffect::changed().preserving_cfg()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::PassManager;
    use swpf_ir::parser::parse_module;
    use swpf_ir::printer::print_module;

    fn run_pass(m: &mut Module, pass: impl FunctionPass + 'static) -> PassEffect {
        let mut am = AnalysisManager::new();
        let mut pm = PassManager::new().verify_between(true);
        pm.add_function_pass(Box::new(pass));
        let runs = pm.run(m, &mut am).expect("pipeline verifies");
        PassEffect {
            changed: runs[0].changed,
            removed_insts: runs[0].removed_insts,
            preserves_cfg: false,
        }
    }

    #[test]
    fn gvn_merges_across_dominating_blocks() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64) -> i64 {\nbb0:\n  \
             %1: i64 = add %0, %0\n  br bb1\nbb1:\n  \
             %2: i64 = add %0, %0\n  ret %2\n}\n",
        )
        .unwrap();
        let e = run_pass(&mut m, Gvn::default());
        assert_eq!(e.removed_insts, 1, "cross-block duplicate merged");
        let text = print_module(&m);
        assert_eq!(text.matches("add").count(), 1, "{text}");
    }

    #[test]
    fn gvn_canonicalises_commutative_operands() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64, %1: i64) -> i64 {\nbb0:\n  \
             %2: i64 = add %0, %1\n  \
             %3: i64 = add %1, %0\n  \
             %4: i64 = sub %0, %1\n  \
             %5: i64 = sub %1, %0\n  \
             %6: i64 = add %2, %3\n  \
             %7: i64 = add %4, %5\n  \
             %8: i64 = add %6, %7\n  \
             ret %8\n}\n",
        )
        .unwrap();
        let e = run_pass(&mut m, Gvn::default());
        assert_eq!(e.removed_insts, 1, "add commutes, sub does not");
    }

    #[test]
    fn gvn_does_not_merge_across_siblings() {
        // bb1 and bb2 are dominator-tree siblings: the duplicate in bb2
        // is not available from bb1.
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64, %1: i1) -> i64 {\nbb0:\n  \
             br %1, bb1, bb2\nbb1:\n  \
             %2: i64 = add %0, %0\n  ret %2\nbb2:\n  \
             %3: i64 = add %0, %0\n  ret %3\n}\n",
        )
        .unwrap();
        let e = run_pass(&mut m, Gvn::default());
        assert_eq!(e.removed_insts, 0, "siblings do not dominate each other");
    }

    #[test]
    fn gvn_keeps_loads_and_prefetches() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: ptr, %1: i64) -> i64 {\nbb0:\n  \
             %2: ptr = gep %0, %1 x 8\n  \
             %3: i64 = load i64, %2\n  br bb1\nbb1:\n  \
             %4: ptr = gep %0, %1 x 8\n  \
             %5: i64 = load i64, %4\n  \
             prefetch %4\n  \
             %6: i64 = add %3, %5\n  ret %6\n}\n",
        )
        .unwrap();
        let e = run_pass(&mut m, Gvn::default());
        assert_eq!(e.removed_insts, 1, "gep merged, loads and prefetch kept");
        let text = print_module(&m);
        assert_eq!(text.matches("load").count(), 2, "{text}");
        assert_eq!(text.matches("prefetch").count(), 1, "{text}");
    }

    #[test]
    fn sccp_folds_constant_chains() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64) -> i64 {\nbb0:\n  \
             %1 = const 6: i64\n  \
             %2 = const 7: i64\n  \
             %3: i64 = mul %1, %2\n  \
             %4: i64 = add %3, %3\n  \
             %5: i64 = add %4, %0\n  \
             ret %5\n}\n",
        )
        .unwrap();
        let e = run_pass(&mut m, Sccp::default());
        assert_eq!(e.removed_insts, 2, "mul and first add fold; %5 is variable");
        let text = print_module(&m);
        assert!(text.contains("84"), "folded constant interned: {text}");
    }

    #[test]
    fn sccp_folds_branches_and_phis() {
        // The condition is constant-true: bb2 is dead, the phi sees
        // only the bb1 edge and folds, and the whole diamond collapses.
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64) -> i64 {\nbb0:\n  \
             %1 = const 1: i64\n  \
             %2 = const 2: i64\n  \
             %3: i1 = icmp slt %1, %2\n  \
             br %3, bb1, bb2\nbb1:\n  \
             %4: i64 = add %1, %2\n  br bb3\nbb2:\n  \
             %5: i64 = mul %1, %2\n  br bb3\nbb3:\n  \
             %6: i64 = phi [bb1: %4], [bb2: %5]\n  \
             %7: i64 = add %6, %0\n  ret %7\n}\n",
        )
        .unwrap();
        let e = run_pass(&mut m, Sccp::default());
        assert!(e.changed);
        let text = print_module(&m);
        assert!(!text.contains("phi"), "phi folded: {text}");
        assert!(!text.contains("br %"), "conditional branch folded: {text}");
    }

    #[test]
    fn sccp_keeps_trapping_division_by_constant_zero() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64) -> i64 {\nbb0:\n  \
             %1 = const 0: i64\n  \
             %2 = const 7: i64\n  \
             %3: i64 = sdiv %2, %1\n  \
             %4: i64 = add %3, %0\n  \
             ret %4\n}\n",
        )
        .unwrap();
        let e = run_pass(&mut m, Sccp::default());
        assert_eq!(e.removed_insts, 0, "div by zero must stay and trap");
        assert!(print_module(&m).contains("sdiv"));
    }

    #[test]
    fn sccp_folds_division_by_nonzero_constant() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64) -> i64 {\nbb0:\n  \
             %1 = const 84: i64\n  \
             %2 = const 2: i64\n  \
             %3: i64 = sdiv %1, %2\n  \
             %4: i64 = add %3, %0\n  \
             ret %4\n}\n",
        )
        .unwrap();
        let e = run_pass(&mut m, Sccp::default());
        assert_eq!(e.removed_insts, 1, "non-trapping division folds");
        assert!(print_module(&m).contains("42"));
    }

    #[test]
    fn sccp_folds_casts_like_the_interpreter() {
        // trunc i64→i8 masks; sext i8→i64 re-signs from the source
        // width: 200 & 0xff = 200, sext_8(200) = -56.
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: i64) -> i64 {\nbb0:\n  \
             %1 = const 200: i64\n  \
             %2: i8 = trunc %1 to i8\n  \
             %3: i64 = sext %2 to i64\n  \
             %4: i64 = add %3, %0\n  \
             ret %4\n}\n",
        )
        .unwrap();
        let e = run_pass(&mut m, Sccp::default());
        assert_eq!(e.removed_insts, 2);
        assert!(print_module(&m).contains("-56"), "{}", print_module(&m));
    }

    #[test]
    fn licm_hoists_invariant_address_computation() {
        // %7 (gep of a loop-invariant index) and %6 (invariant add) are
        // hoistable; the load and the induction update are not.
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: ptr, %1: i64, %2: i64) -> void {\n  \
             %3 = const 0: i64\n  \
             %4 = const 1: i64\nbb0:\n  \
             br bb1\nbb1:\n  \
             %5: i64 = phi [bb0: %3], [bb2: %9]\n  \
             %6: i1 = icmp slt %5, %1\n  \
             br %6, bb2, bb3\nbb2:\n  \
             %7: i64 = mul %2, %2\n  \
             %8: ptr = gep %0, %7 x 8\n  \
             prefetch %8\n  \
             %9: i64 = add %5, %4\n  \
             br bb1\nbb3:\n  \
             ret\n}\n",
        )
        .unwrap();
        let fid = m.find_function("f").unwrap();
        let before_entry = m.function(fid).block(swpf_ir::BlockId(0)).insts.len();
        let e = run_pass(&mut m, Licm::default());
        assert!(e.changed);
        let after_entry = m.function(fid).block(swpf_ir::BlockId(0)).insts.len();
        assert_eq!(
            after_entry - before_entry,
            2,
            "mul hoists, then the gep over it becomes invariant and hoists"
        );
        // The prefetch and the induction update stay in the loop body.
        let body = m.function(fid).block(swpf_ir::BlockId(2));
        let kinds: Vec<String> = body
            .insts
            .iter()
            .map(|&v| format!("{}", m.function(fid).inst(v).unwrap().kind))
            .collect();
        assert!(kinds.iter().any(|k| k.starts_with("prefetch")), "{kinds:?}");
        assert!(kinds.iter().any(|k| k.starts_with("add")), "{kinds:?}");
    }

    #[test]
    fn licm_leaves_variant_and_memory_instructions() {
        let mut m = parse_module(
            "module t\n\nfunc @f(%0: ptr, %1: i64) -> void {\n  \
             %2 = const 0: i64\n  \
             %3 = const 1: i64\nbb0:\n  \
             br bb1\nbb1:\n  \
             %4: i64 = phi [bb0: %2], [bb2: %7]\n  \
             %5: i1 = icmp slt %4, %1\n  \
             br %5, bb2, bb3\nbb2:\n  \
             %6: ptr = gep %0, %4 x 8\n  \
             %7: i64 = add %4, %3\n  \
             br bb1\nbb3:\n  \
             ret\n}\n",
        )
        .unwrap();
        let e = run_pass(&mut m, Licm::default());
        // %6 and %7 depend on the induction phi; %5 compares the phi.
        // Nothing is invariant.
        assert!(!e.changed, "nothing to hoist");
    }
}
