//! # swpf-pass — a pass manager for composable IR transformations
//!
//! The CGO'17 prefetching pass explicitly relies on *later compiler
//! passes* to clean up the address-generation code it emits (§4/§5 of
//! the paper: the prototype leaves redundancy for `-O3` to remove).
//! Reproducing that requires what the original monolithic
//! `run_on_module` could not express: a pipeline of independent passes
//! over the same module, sharing analyses instead of recomputing them.
//!
//! This crate provides that substrate, shaped like a miniature LLVM
//! new-pass-manager:
//!
//! * [`FunctionPass`] / [`ModulePass`] — a transformation over one
//!   function or a whole module. A pass **never mutates the analysis
//!   cache itself**; it *declares* what it did through the returned
//!   [`PassEffect`], and the driver invalidates accordingly.
//! * [`AnalysisManager`] — lazily computes and caches the
//!   `swpf-analysis` products (dominators, loops, induction variables,
//!   object roots) per function behind `Arc`s. Results are shared, and
//!   [`AnalysisManager::fork`] clones the cache in O(entries) so a
//!   caller compiling many variants of one pristine module (the
//!   `swpf-tune` evaluator) pays for each analysis once, not once per
//!   variant.
//! * [`PassManager`] — runs a pipeline in order, invalidates caches on
//!   declared mutation, and (in the verify-between-passes debug mode)
//!   checks module invariants after every pass, attributing **every**
//!   breakage to the pass that caused it.
//! * [`cleanup`] — the composable cleanup passes themselves:
//!   [`cleanup::LocalCse`] and [`cleanup::Dce`], the measurable "let
//!   `-O3` clean it up" step over generated address code.
//! * [`global`] — the cross-block half of that step: dominator-scoped
//!   value numbering ([`global::Gvn`]), sparse conditional constant
//!   propagation ([`global::Sccp`]), and loop-invariant code motion
//!   ([`global::Licm`]) over the same cached analyses.
//!
//! ## Invalidation contract
//!
//! An analysis cached for function `f` is valid as long as `f`'s body
//! is unchanged. The driver maintains this: when a pass returns
//! [`PassEffect::changed`] for `f` (or for the module), the cached
//! analyses of `f` (of every function) are dropped before the next
//! pass runs. One finer-grained preservation tier exists: a pass whose
//! mutations provably leave the CFG intact (no blocks or edges added,
//! removed, or retargeted) declares [`PassEffect::preserving_cfg`],
//! and the driver keeps the dominator tree and loop forest — which
//! read only block structure — dropping just the value-level analyses
//! (induction variables, object roots), which reference instruction
//! placement. The delete-only cleanup passes (CSE, DCE, GVN) and the
//! move-only LICM qualify; SCCP qualifies exactly when it folded no
//! branches.
//!
//! ```
//! use swpf_pass::{AnalysisManager, PassManager};
//! use swpf_pass::cleanup::{Dce, LocalCse};
//! use swpf_ir::parser::parse_module;
//!
//! let mut m = parse_module(
//!     "module demo\n\nfunc @f(%0: i64) -> i64 {\nbb0:\n  %1: i64 = add %0, %0\n  %2: i64 = add %0, %0\n  %3: i64 = add %1, %2\n  ret %3\n}\n",
//! )
//! .unwrap();
//! let mut am = AnalysisManager::new();
//! let mut pm = PassManager::new().verify_between(true);
//! pm.add_function_pass(Box::new(LocalCse::default()));
//! pm.add_function_pass(Box::new(Dce::default()));
//! let runs = pm.run(&mut m, &mut am).unwrap();
//! assert_eq!(runs.iter().map(|r| r.removed_insts).sum::<usize>(), 1);
//! ```

pub mod cleanup;
pub mod global;
pub mod manager;

pub use cleanup::{Dce, LocalCse, VerifyPass};
pub use global::{Gvn, Licm, Sccp};
pub use manager::{
    AnalysisManager, FunctionPass, ModulePass, PassEffect, PassManager, PassRun, PipelineError,
};
