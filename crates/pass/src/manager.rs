//! The driver: pass traits, the analysis cache, and the pipeline runner.

use std::collections::HashMap;
use std::sync::Arc;
use swpf_analysis::{DomTree, FuncAnalysis, IvAnalysis, LoopForest, RootsAnalysis};
use swpf_ir::{FuncId, Function, Module};

/// What one pass execution did, as declared by the pass itself.
///
/// The driver turns this declaration into cache maintenance: a changed
/// function's analyses are invalidated before the next pass runs. A
/// pass that lies (mutates but reports [`PassEffect::unchanged`]) hands
/// stale analyses to its successors — the verify-between-passes mode
/// ([`PassManager::verify_between`]) exists to catch the fallout early.
///
/// A pass whose mutations leave the CFG intact (no blocks or edges
/// added, removed, or retargeted) may additionally declare
/// [`PassEffect::preserving_cfg`]: the driver then keeps the cached
/// dominator tree and loop forest — which read only block structure —
/// and drops just the value-level analyses (induction variables,
/// object roots), which reference instruction placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassEffect {
    /// Whether the pass mutated the IR it ran on.
    pub changed: bool,
    /// Instructions the pass removed from blocks (cleanup-pass metric;
    /// zero for passes that only insert or rewrite).
    pub removed_insts: usize,
    /// Whether every mutation left the CFG (block set and edge set)
    /// unchanged, so dominators and loops remain valid.
    pub preserves_cfg: bool,
}

impl PassEffect {
    /// The pass left the IR untouched; analyses stay valid.
    #[must_use]
    pub fn unchanged() -> Self {
        PassEffect {
            changed: false,
            removed_insts: 0,
            preserves_cfg: false,
        }
    }

    /// The pass mutated the IR (inserting or rewriting; nothing removed).
    #[must_use]
    pub fn changed() -> Self {
        PassEffect {
            changed: true,
            removed_insts: 0,
            preserves_cfg: false,
        }
    }

    /// The pass removed `n` instructions (changed iff `n > 0`).
    #[must_use]
    pub fn removed(n: usize) -> Self {
        PassEffect {
            changed: n > 0,
            removed_insts: n,
            preserves_cfg: false,
        }
    }

    /// Declare that the mutation did not touch the CFG: no blocks or
    /// branch edges were added, removed, or retargeted. Inserting,
    /// deleting, moving, or rewriting non-terminator instructions all
    /// qualify. The driver keeps dominators and loops cached.
    #[must_use]
    pub fn preserving_cfg(mut self) -> Self {
        self.preserves_cfg = true;
        self
    }
}

/// A transformation over one function.
pub trait FunctionPass {
    /// Stable pass name ("swpf", "cse", ...) for pipeline specs, logs,
    /// and verify-failure attribution.
    fn name(&self) -> &'static str;

    /// Transform `m`'s function `fid`, reading analyses through `am`.
    ///
    /// The pass must not invalidate `am` itself — it reports mutation
    /// through the returned [`PassEffect`] and the driver invalidates.
    fn run(&mut self, m: &mut Module, fid: FuncId, am: &mut AnalysisManager) -> PassEffect;
}

/// A transformation (or check) over a whole module.
pub trait ModulePass {
    /// Stable pass name for pipeline specs, logs, and attribution.
    fn name(&self) -> &'static str;

    /// Transform or check `m`. Returning an `Err` aborts the pipeline
    /// (used by verification passes).
    ///
    /// # Errors
    /// A pass-specific diagnostic; the driver wraps it with the pass
    /// name into a [`PipelineError`].
    fn run(&mut self, m: &mut Module, am: &mut AnalysisManager) -> Result<PassEffect, String>;
}

/// Cached per-function analyses.
#[derive(Debug, Default, Clone)]
struct FuncEntry {
    dom: Option<Arc<DomTree>>,
    loops: Option<Arc<LoopForest>>,
    ivs: Option<Arc<IvAnalysis>>,
    roots: Option<Arc<RootsAnalysis>>,
}

/// Lazily computes and caches `swpf-analysis` results per function.
///
/// Each product (dominators, loops, induction variables, object roots)
/// is cached independently behind an `Arc`, computed on first request
/// and handed out by clone afterwards. [`AnalysisManager::invalidate`]
/// drops a function's entries; [`AnalysisManager::fork`] clones the
/// cache cheaply (`Arc` clones) so pipelines over clones of one pristine
/// module can share its pre-mutation analyses without any of their
/// invalidations leaking back.
#[derive(Debug, Default)]
pub struct AnalysisManager {
    entries: HashMap<FuncId, FuncEntry>,
    computed: usize,
    hits: usize,
    preserved: usize,
}

impl AnalysisManager {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        AnalysisManager::default()
    }

    /// A new manager sharing this one's cached results (cheap `Arc`
    /// clones). The fork's invalidations and statistics are its own.
    #[must_use]
    pub fn fork(&self) -> Self {
        AnalysisManager {
            entries: self.entries.clone(),
            computed: 0,
            hits: 0,
            preserved: 0,
        }
    }

    /// Individual analyses computed so far (cache misses).
    #[must_use]
    pub fn analyses_computed(&self) -> usize {
        self.computed
    }

    /// Requests served from the cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.hits
    }

    /// Cached analyses kept alive across a CFG-preserving mutation
    /// (each one a recomputation the declaration avoided).
    #[must_use]
    pub fn analyses_preserved(&self) -> usize {
        self.preserved
    }

    /// Drop every cached analysis of `fid`.
    pub fn invalidate(&mut self, fid: FuncId) {
        if self.entries.remove(&fid).is_some() {
            swpf_obs::count("analysis.invalidated", 1);
        }
    }

    /// Partial invalidation after a CFG-preserving mutation of `fid`:
    /// the dominator tree and loop forest read only block structure and
    /// stay cached; the value-level analyses (induction variables,
    /// object roots) reference instruction placement and are dropped.
    pub fn invalidate_preserving_cfg(&mut self, fid: FuncId) {
        if let Some(entry) = self.entries.get_mut(&fid) {
            entry.ivs = None;
            entry.roots = None;
            let kept = usize::from(entry.dom.is_some()) + usize::from(entry.loops.is_some());
            if kept > 0 {
                self.preserved += kept;
                swpf_obs::count("analysis.preserved", kept as u64);
            }
            swpf_obs::count("analysis.invalidated", 1);
        }
    }

    /// Drop the whole cache (after a module-level mutation).
    pub fn invalidate_all(&mut self) {
        if !self.entries.is_empty() {
            swpf_obs::count("analysis.invalidated", self.entries.len() as u64);
        }
        self.entries.clear();
    }

    /// [`AnalysisManager::invalidate_preserving_cfg`] over every cached
    /// function (after a CFG-preserving module-level mutation).
    pub fn invalidate_all_preserving_cfg(&mut self) {
        for fid in self.entries.keys().copied().collect::<Vec<_>>() {
            self.invalidate_preserving_cfg(fid);
        }
    }

    /// One cache hit: bump the local statistic and the process-wide
    /// observability counter.
    fn note_hit(&mut self) {
        self.hits += 1;
        swpf_obs::count("analysis.cache_hit", 1);
    }

    /// One cache miss (analysis computed).
    fn note_computed(&mut self) {
        self.computed += 1;
        swpf_obs::count("analysis.computed", 1);
    }

    /// The dominator tree of `f` (`fid` must identify `f` in its module).
    pub fn dom(&mut self, f: &Function, fid: FuncId) -> Arc<DomTree> {
        if let Some(dom) = self.entries.entry(fid).or_default().dom.clone() {
            self.note_hit();
            return dom;
        }
        let dom = Arc::new(DomTree::compute(f));
        self.note_computed();
        self.entries.entry(fid).or_default().dom = Some(Arc::clone(&dom));
        dom
    }

    /// The natural-loop forest of `f`.
    pub fn loops(&mut self, f: &Function, fid: FuncId) -> Arc<LoopForest> {
        if let Some(loops) = self.entries.entry(fid).or_default().loops.clone() {
            self.note_hit();
            return loops;
        }
        let dom = self.dom(f, fid);
        let loops = Arc::new(LoopForest::compute(f, &dom));
        self.note_computed();
        self.entries.entry(fid).or_default().loops = Some(Arc::clone(&loops));
        loops
    }

    /// The induction-variable analysis of `f`.
    pub fn ivs(&mut self, f: &Function, fid: FuncId) -> Arc<IvAnalysis> {
        if let Some(ivs) = self.entries.entry(fid).or_default().ivs.clone() {
            self.note_hit();
            return ivs;
        }
        let loops = self.loops(f, fid);
        let ivs = Arc::new(IvAnalysis::compute(f, &loops));
        self.note_computed();
        self.entries.entry(fid).or_default().ivs = Some(Arc::clone(&ivs));
        ivs
    }

    /// The memoised object roots of `f`.
    pub fn roots(&mut self, f: &Function, fid: FuncId) -> Arc<RootsAnalysis> {
        if let Some(roots) = self.entries.entry(fid).or_default().roots.clone() {
            self.note_hit();
            return roots;
        }
        let roots = Arc::new(RootsAnalysis::compute(f));
        self.note_computed();
        self.entries.entry(fid).or_default().roots = Some(Arc::clone(&roots));
        roots
    }

    /// The full bundle the prefetch pass consumes, assembled from the
    /// cache (each component computed at most once per validity window).
    pub fn func_analysis(&mut self, f: &Function, fid: FuncId) -> FuncAnalysis {
        FuncAnalysis {
            dom: self.dom(f, fid),
            loops: self.loops(f, fid),
            ivs: self.ivs(f, fid),
            roots: self.roots(f, fid),
        }
    }
}

/// A pipeline failure: which pass broke the module, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// Name of the pass after which the failure was detected.
    pub pass: &'static str,
    /// The underlying diagnostic (verifier message, pass error).
    pub message: String,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pass `{}`: {}", self.pass, self.message)
    }
}

impl std::error::Error for PipelineError {}

/// What one pipeline stage did, aggregated over the functions it ran on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassRun {
    /// The pass's name.
    pub name: &'static str,
    /// Whether any function (or the module) was mutated.
    pub changed: bool,
    /// Total instructions removed by this stage.
    pub removed_insts: usize,
}

/// One pipeline stage: a function pass (driven over every function) or
/// a module pass.
enum Stage<'p> {
    Function(Box<dyn FunctionPass + 'p>),
    Module(Box<dyn ModulePass + 'p>),
}

/// Runs a pass pipeline over a module, maintaining the analysis cache.
///
/// Passes execute in insertion order. After each function a function
/// pass changed, that function's analyses are invalidated; after a
/// module pass that reports change, the whole cache is. With
/// [`PassManager::verify_between`] enabled, module invariants are
/// checked after every stage; the first broken stage aborts the
/// pipeline with **every** violation it introduced attributed to it.
///
/// When profiling is enabled (`swpf-obs`), each stage runs under a
/// `pass:<name>` span, and the analysis cache reports
/// `analysis.cache_hit` / `analysis.computed` / `analysis.invalidated`
/// counters.
#[derive(Default)]
pub struct PassManager<'p> {
    stages: Vec<Stage<'p>>,
    verify_between: bool,
}

impl<'p> PassManager<'p> {
    /// An empty pipeline.
    #[must_use]
    pub fn new() -> Self {
        PassManager {
            stages: Vec::new(),
            verify_between: false,
        }
    }

    /// Enable (or disable) the verify-between-passes debug mode.
    #[must_use]
    pub fn verify_between(mut self, on: bool) -> Self {
        self.verify_between = on;
        self
    }

    /// Append a function pass (driven over every function in module
    /// order).
    pub fn add_function_pass(&mut self, pass: Box<dyn FunctionPass + 'p>) {
        self.stages.push(Stage::Function(pass));
    }

    /// Append a module pass.
    pub fn add_module_pass(&mut self, pass: Box<dyn ModulePass + 'p>) {
        self.stages.push(Stage::Module(pass));
    }

    /// Number of stages in the pipeline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Run every stage in order over `m`, reading and maintaining `am`.
    ///
    /// # Errors
    /// The first module-pass error, or (with verification enabled) the
    /// first stage whose post-verification fails — attributed to that
    /// stage, with **every** invariant violation it introduced listed.
    pub fn run(
        &mut self,
        m: &mut Module,
        am: &mut AnalysisManager,
    ) -> Result<Vec<PassRun>, PipelineError> {
        let mut runs = Vec::with_capacity(self.stages.len());
        for stage in &mut self.stages {
            let stage_name = match stage {
                Stage::Function(p) => p.name(),
                Stage::Module(p) => p.name(),
            };
            let _span = swpf_obs::enabled().then(|| swpf_obs::span(format!("pass:{stage_name}")));
            let run = match stage {
                Stage::Function(pass) => {
                    let mut changed = false;
                    let mut removed = 0usize;
                    for fid in m.func_ids().collect::<Vec<_>>() {
                        let effect = pass.run(m, fid, am);
                        if effect.changed {
                            if effect.preserves_cfg {
                                am.invalidate_preserving_cfg(fid);
                            } else {
                                am.invalidate(fid);
                            }
                            changed = true;
                        }
                        removed += effect.removed_insts;
                    }
                    PassRun {
                        name: pass.name(),
                        changed,
                        removed_insts: removed,
                    }
                }
                Stage::Module(pass) => {
                    let effect = pass.run(m, am).map_err(|message| PipelineError {
                        pass: pass.name(),
                        message,
                    })?;
                    if effect.changed {
                        if effect.preserves_cfg {
                            am.invalidate_all_preserving_cfg();
                        } else {
                            am.invalidate_all();
                        }
                    }
                    PassRun {
                        name: pass.name(),
                        changed: effect.changed,
                        removed_insts: effect.removed_insts,
                    }
                }
            };
            if self.verify_between {
                let errs = swpf_ir::verifier::verify_module_all(m);
                if !errs.is_empty() {
                    use std::fmt::Write as _;
                    let mut message = format!(
                        "module invariants broken after this pass ({} violation{}):",
                        errs.len(),
                        if errs.len() == 1 { "" } else { "s" }
                    );
                    for e in &errs {
                        let _ = write!(message, "\n  {e}");
                    }
                    return Err(PipelineError {
                        pass: run.name,
                        message,
                    });
                }
            }
            runs.push(run);
        }
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::parser::parse_module;

    const LOOP_KERNEL: &str = "module t\n\n\
        func @k(%0: ptr, %1: ptr, %2: i64) -> void {\n\
          %3 = const 0: i64\n\
          %4 = const 1: i64\n\
        bb0:\n\
          br bb1\n\
        bb1:\n\
          %5: i64 = phi [bb0: %3], [bb2: %11]\n\
          %6: i1 = icmp slt %5, %2\n\
          br %6, bb2, bb3\n\
        bb2:\n\
          %7: ptr = gep %1, %5 x 8\n\
          %8: i64 = load i64, %7\n\
          %9: ptr = gep %0, %8 x 8\n\
          %10: i64 = load i64, %9\n\
          %11: i64 = add %5, %4\n\
          br bb1\n\
        bb3:\n\
          ret\n\
        }\n";

    #[test]
    fn analyses_are_computed_once_and_shared() {
        let m = parse_module(LOOP_KERNEL).unwrap();
        let fid = m.find_function("k").unwrap();
        let mut am = AnalysisManager::new();

        let a = am.func_analysis(m.function(fid), fid);
        assert_eq!(am.analyses_computed(), 4, "dom, loops, ivs, roots");
        let hits_after_first = am.cache_hits();

        let b = am.func_analysis(m.function(fid), fid);
        assert_eq!(am.analyses_computed(), 4, "second request is all hits");
        assert!(am.cache_hits() > hits_after_first);
        assert!(Arc::ptr_eq(&a.dom, &b.dom), "shared, not recomputed");
        assert!(Arc::ptr_eq(&a.roots, &b.roots));
    }

    #[test]
    fn invalidation_forces_recomputation() {
        let m = parse_module(LOOP_KERNEL).unwrap();
        let fid = m.find_function("k").unwrap();
        let mut am = AnalysisManager::new();
        let a = am.dom(m.function(fid), fid);
        am.invalidate(fid);
        let b = am.dom(m.function(fid), fid);
        assert!(!Arc::ptr_eq(&a, &b), "invalidate drops the cached tree");
        assert_eq!(am.analyses_computed(), 2);
    }

    #[test]
    fn forks_share_results_but_not_invalidations() {
        let m = parse_module(LOOP_KERNEL).unwrap();
        let fid = m.find_function("k").unwrap();
        let mut shared = AnalysisManager::new();
        let a = shared.func_analysis(m.function(fid), fid);

        let mut fork = shared.fork();
        let b = fork.func_analysis(m.function(fid), fid);
        assert_eq!(fork.analyses_computed(), 0, "all served from the fork");
        assert!(Arc::ptr_eq(&a.loops, &b.loops));

        fork.invalidate(fid);
        let _ = fork.dom(m.function(fid), fid);
        assert_eq!(fork.analyses_computed(), 1);
        // The shared cache still holds the original result.
        let c = shared.dom(m.function(fid), fid);
        assert!(Arc::ptr_eq(&a.dom, &c));
    }

    /// A pass that deliberately breaks SSA (truncates the entry block),
    /// used to prove the verify-between mode attributes breakage.
    struct Vandal;
    impl FunctionPass for Vandal {
        fn name(&self) -> &'static str {
            "vandal"
        }
        fn run(&mut self, m: &mut Module, fid: FuncId, _am: &mut AnalysisManager) -> PassEffect {
            let entry = m.function(fid).entry();
            m.function_mut(fid).block_mut(entry).insts.clear();
            PassEffect::changed()
        }
    }

    struct Nop;
    impl FunctionPass for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&mut self, _m: &mut Module, _f: FuncId, _am: &mut AnalysisManager) -> PassEffect {
            PassEffect::unchanged()
        }
    }

    #[test]
    fn verify_between_attributes_breakage_to_the_offending_pass() {
        let mut m = parse_module(LOOP_KERNEL).unwrap();
        let mut am = AnalysisManager::new();
        let mut pm = PassManager::new().verify_between(true);
        pm.add_function_pass(Box::new(Nop));
        pm.add_function_pass(Box::new(Vandal));
        let err = pm.run(&mut m, &mut am).unwrap_err();
        assert_eq!(err.pass, "vandal");
        assert!(err.message.contains("invariants broken"), "{err}");
    }

    /// A pass that drops the terminator of every branching block,
    /// breaking several invariants at once.
    struct WideVandal;
    impl FunctionPass for WideVandal {
        fn name(&self) -> &'static str {
            "wide-vandal"
        }
        fn run(&mut self, m: &mut Module, fid: FuncId, _am: &mut AnalysisManager) -> PassEffect {
            for b in m.function(fid).block_ids().collect::<Vec<_>>() {
                let f = m.function_mut(fid);
                if f.block(b).insts.len() > 1 {
                    f.block_mut(b).insts.pop();
                }
            }
            PassEffect::changed()
        }
    }

    #[test]
    fn verify_between_reports_every_violation_of_a_broken_pass() {
        let mut m = parse_module(LOOP_KERNEL).unwrap();
        let mut am = AnalysisManager::new();
        let mut pm = PassManager::new().verify_between(true);
        pm.add_function_pass(Box::new(WideVandal));
        let err = pm.run(&mut m, &mut am).unwrap_err();
        assert_eq!(err.pass, "wide-vandal");
        assert!(err.message.contains("violations"), "{err}");
        let listed = err.message.matches("verify error").count();
        assert!(listed >= 2, "expected several violations listed: {err}");
    }

    /// A pass that claims to mutate without touching the CFG (it does
    /// nothing, which trivially satisfies the declaration).
    struct CfgPreservingNop;
    impl FunctionPass for CfgPreservingNop {
        fn name(&self) -> &'static str {
            "cfg-nop"
        }
        fn run(&mut self, _m: &mut Module, _f: FuncId, _am: &mut AnalysisManager) -> PassEffect {
            PassEffect::changed().preserving_cfg()
        }
    }

    #[test]
    fn cfg_preserving_change_keeps_dom_and_loops() {
        let mut m = parse_module(LOOP_KERNEL).unwrap();
        let fid = m.find_function("k").unwrap();
        let mut am = AnalysisManager::new();
        let before = am.func_analysis(m.function(fid), fid);
        assert_eq!(am.analyses_computed(), 4);

        let mut pm = PassManager::new();
        pm.add_function_pass(Box::new(CfgPreservingNop));
        pm.run(&mut m, &mut am).unwrap();
        assert_eq!(am.analyses_preserved(), 2, "dom and loops survive");

        // CFG analyses are served from the cache; value-level analyses
        // were dropped and recompute.
        let after = am.func_analysis(m.function(fid), fid);
        assert!(Arc::ptr_eq(&before.dom, &after.dom));
        assert!(Arc::ptr_eq(&before.loops, &after.loops));
        assert!(!Arc::ptr_eq(&before.ivs, &after.ivs));
        assert!(!Arc::ptr_eq(&before.roots, &after.roots));
        assert_eq!(am.analyses_computed(), 6, "only ivs and roots recomputed");
    }

    #[test]
    fn non_preserving_change_still_drops_everything() {
        let m = parse_module(LOOP_KERNEL).unwrap();
        let fid = m.find_function("k").unwrap();
        let mut am = AnalysisManager::new();
        let before = am.dom(m.function(fid), fid);
        am.invalidate_preserving_cfg(fid);
        // Partial invalidation kept dom...
        assert!(Arc::ptr_eq(&before, &am.dom(m.function(fid), fid)));
        // ...full invalidation does not.
        am.invalidate(fid);
        assert!(!Arc::ptr_eq(&before, &am.dom(m.function(fid), fid)));
    }

    #[test]
    fn driver_invalidates_only_changed_functions() {
        let mut m = parse_module(LOOP_KERNEL).unwrap();
        let fid = m.find_function("k").unwrap();
        let mut am = AnalysisManager::new();
        let before = am.dom(m.function(fid), fid);

        // An unchanged pass leaves the cache alone…
        let mut pm = PassManager::new();
        pm.add_function_pass(Box::new(Nop));
        pm.run(&mut m, &mut am).unwrap();
        assert!(Arc::ptr_eq(&before, &am.dom(m.function(fid), fid)));

        // …a mutating pass drops it.
        let mut pm = PassManager::new();
        pm.add_function_pass(Box::new(Vandal));
        let runs = pm.run(&mut m, &mut am).unwrap();
        assert!(runs[0].changed);
        assert!(!Arc::ptr_eq(&before, &am.dom(m.function(fid), fid)));
    }
}
