//! Tuning outcomes: what a search visited, what it chose, and how
//! close that choice sits to the exhaustive oracle.

use swpf_core::PassConfig;

/// One point a search requested: the configuration and its simulated
/// cycles on the search's target machine.
#[derive(Debug, Clone)]
pub struct EvalPoint {
    /// The configuration evaluated.
    pub config: PassConfig,
    /// Simulated cycles on the target machine.
    pub cycles: u64,
}

/// What one strategy's search over one (workload, machine) cell did.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The strategy that produced this outcome.
    pub strategy: &'static str,
    /// Every **distinct** point the search requested, in request order.
    /// Re-requests of an already-visited point (bracket reuse, repeated
    /// neighbours) are free and not recounted — this is the honest
    /// search cost in candidate compilations.
    pub visited: Vec<EvalPoint>,
    /// Index into `visited` of the chosen point (minimum cycles;
    /// earliest visit wins ties, so outcomes are deterministic).
    pub best: usize,
}

impl Outcome {
    /// The chosen configuration.
    #[must_use]
    pub fn best_config(&self) -> &PassConfig {
        &self.visited[self.best].config
    }

    /// Cycles of the chosen configuration on the target machine.
    #[must_use]
    pub fn best_cycles(&self) -> u64 {
        self.visited[self.best].cycles
    }

    /// Number of distinct candidate points the search evaluated.
    #[must_use]
    pub fn points_evaluated(&self) -> usize {
        self.visited.len()
    }
}

/// The complete record of tuning one (workload, machine) cell with one
/// strategy: every evaluated point, the chosen config, and — when an
/// exhaustive sweep of the same cell is available — %-of-oracle.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Workload display name.
    pub workload: String,
    /// Machine display name.
    pub machine: &'static str,
    /// Strategy name.
    pub strategy: &'static str,
    /// Every distinct point the search evaluated, in request order.
    pub points: Vec<EvalPoint>,
    /// The chosen configuration.
    pub chosen: PassConfig,
    /// Cycles of the chosen configuration.
    pub chosen_cycles: u64,
    /// Cycles of the paper-heuristic configuration (always evaluated).
    pub heuristic_cycles: u64,
    /// Cycles of the exhaustive sweep's optimum, when one was run.
    pub oracle_cycles: Option<u64>,
}

impl TuneReport {
    /// How close the chosen config sits to the exhaustive oracle, as a
    /// percentage: `100 × oracle / chosen`. `100` means the search
    /// found the oracle's optimum; above `100` means it beat the
    /// (distance-axis) oracle by exploring a secondary axis. `NaN`
    /// without an oracle.
    #[must_use]
    pub fn pct_of_oracle(&self) -> f64 {
        match self.oracle_cycles {
            Some(o) => 100.0 * o as f64 / self.chosen_cycles as f64,
            None => f64::NAN,
        }
    }

    /// How close the *heuristic* sits to the oracle, as a percentage —
    /// the paper's near-optimality claim, quantified per cell. `NaN`
    /// without an oracle.
    #[must_use]
    pub fn heuristic_pct_of_oracle(&self) -> f64 {
        match self.oracle_cycles {
            Some(o) => 100.0 * o as f64 / self.heuristic_cycles as f64,
            None => f64::NAN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(chosen: u64, heuristic: u64, oracle: Option<u64>) -> TuneReport {
        TuneReport {
            workload: "IS".to_string(),
            machine: "a53",
            strategy: "golden",
            points: vec![],
            chosen: PassConfig::default(),
            chosen_cycles: chosen,
            heuristic_cycles: heuristic,
            oracle_cycles: oracle,
        }
    }

    #[test]
    fn pct_of_oracle_is_100_at_the_optimum() {
        let r = report(800, 1000, Some(800));
        assert!((r.pct_of_oracle() - 100.0).abs() < 1e-12);
        assert!((r.heuristic_pct_of_oracle() - 80.0).abs() < 1e-12);
        assert!(report(800, 1000, None).pct_of_oracle().is_nan());
    }
}
