//! The candidate evaluator: one interpretation per configuration
//! point, fanned out to every machine of the grid row.
//!
//! An [`Evaluator`] is constructed per (workload, machine set); its
//! point cache is keyed by [`PassConfig::cache_key`], so the full cache
//! key is conceptually `(workload, machine-set, config)` — two
//! strategies (or two machines' searches) requesting the same point pay
//! for it once. Evaluating a point compiles the candidate kernel
//! through `swpf-core`, verifies it, interprets it **once**, and fans
//! the retire-event stream out to all machines' timing models via the
//! `swpf-sim` replay paths ([`swpf_sim::run_module_on_machines`]) — so
//! cost scales with candidates, not candidates × machines.
//!
//! Everything is deterministic: workloads build deterministic inputs,
//! simulation is execution-driven, and the cache only memoises — a
//! tuning run's every reported number is a pure function of (workload,
//! machine set, search space, strategy).

use std::collections::HashMap;
use std::sync::Arc;
use swpf_core::PassConfig;
use swpf_sim::{run_module_on_machines, MachineConfig, SimStats};
use swpf_workloads::Workload;

/// One evaluated point of the parameter space: the configuration, what
/// the pass did with it, and the timing of the resulting kernel on
/// every machine of the evaluator's set.
#[derive(Debug, Clone)]
pub struct EvaluatedPoint {
    /// The configuration the candidate kernel was compiled with.
    pub config: PassConfig,
    /// Per-machine statistics, in the evaluator's machine order.
    pub stats: Vec<SimStats>,
    /// Prefetch instructions the pass emitted at this point.
    pub prefetches: usize,
}

/// Compiles, interprets, and times candidate configurations for one
/// workload on one machine set, memoising by configuration point.
pub struct Evaluator<'a> {
    workload: &'a dyn Workload,
    machines: &'a [MachineConfig],
    index: HashMap<String, usize>,
    points: Vec<Arc<EvaluatedPoint>>,
    interpretations: usize,
}

impl<'a> Evaluator<'a> {
    /// An evaluator for `workload` on `machines` with an empty cache.
    #[must_use]
    pub fn new(workload: &'a dyn Workload, machines: &'a [MachineConfig]) -> Self {
        Evaluator {
            workload,
            machines,
            index: HashMap::new(),
            points: Vec::new(),
            interpretations: 0,
        }
    }

    /// The machine set results are reported over.
    #[must_use]
    pub fn machines(&self) -> &[MachineConfig] {
        self.machines
    }

    /// Display name of the workload being tuned.
    #[must_use]
    pub fn workload_name(&self) -> &'static str {
        self.workload.name()
    }

    /// Evaluate one configuration point: on a cache miss, build the
    /// workload's baseline kernel, run the pass with `config`, verify
    /// the output, and simulate it on every machine off a single
    /// interpretation. Cached points are returned without any work.
    ///
    /// # Panics
    /// If the pass output fails verification or the simulation traps —
    /// both are fatal configuration errors.
    pub fn eval(&mut self, config: &PassConfig) -> Arc<EvaluatedPoint> {
        let key = config.cache_key();
        if let Some(&i) = self.index.get(&key) {
            return Arc::clone(&self.points[i]);
        }
        let mut module = self.workload.build_baseline();
        let report = swpf_core::run_on_module(&mut module, config);
        swpf_ir::verifier::verify_module(&module).expect("pass output verifies");
        let configs: Vec<&MachineConfig> = self.machines.iter().collect();
        let stats = run_module_on_machines(&configs, &module, "kernel", |interp| {
            self.workload.setup(interp)
        });
        self.interpretations += 1;
        let point = Arc::new(EvaluatedPoint {
            config: config.clone(),
            stats,
            prefetches: report.total_prefetches(),
        });
        self.index.insert(key, self.points.len());
        self.points.push(Arc::clone(&point));
        point
    }

    /// Simulated cycles of `config` on machine index `machine`.
    ///
    /// # Panics
    /// If `machine` is out of range of the machine set.
    pub fn cycles(&mut self, config: &PassConfig, machine: usize) -> u64 {
        assert!(machine < self.machines.len(), "machine index out of range");
        self.eval(config).stats[machine].cycles
    }

    /// Interpretations actually paid (cache misses) — with an
    /// N-machine set, the fan-out makes this the whole cost: it counts
    /// candidates, not candidates × machines.
    #[must_use]
    pub fn interpretations(&self) -> usize {
        self.interpretations
    }

    /// Every distinct point evaluated so far, in first-request order.
    #[must_use]
    pub fn points(&self) -> &[Arc<EvaluatedPoint>] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_workloads::{Scale, WorkloadId};

    #[test]
    fn points_are_cached_by_config_key_and_fan_out_to_all_machines() {
        let w = WorkloadId::Is.instantiate(Scale::Test);
        let machines = [MachineConfig::xeon_phi(), MachineConfig::a53()];
        let mut ev = Evaluator::new(w.as_ref(), &machines);

        let a = ev.eval(&PassConfig::default());
        assert_eq!(a.stats.len(), 2, "one SimStats per machine");
        assert!(a.stats.iter().all(|s| s.cycles > 0));
        assert!(a.prefetches > 0, "IS has an indirect access to prefetch");
        assert_eq!(ev.interpretations(), 1);

        // Same point (even via a differently-constructed equal config):
        // served from cache, no new interpretation.
        let b = ev.eval(&PassConfig::with_look_ahead(64));
        assert_eq!(ev.interpretations(), 1);
        assert_eq!(a.stats[0].cycles, b.stats[0].cycles);

        // A genuinely different point pays one more interpretation.
        let _ = ev.eval(&PassConfig::with_look_ahead(8));
        assert_eq!(ev.interpretations(), 2);
        assert_eq!(ev.points().len(), 2);
    }

    #[test]
    fn fan_out_matches_dedicated_single_machine_runs() {
        let w = WorkloadId::Hj2.instantiate(Scale::Test);
        let machines = [MachineConfig::xeon_phi(), MachineConfig::a53()];
        let mut ev = Evaluator::new(w.as_ref(), &machines);
        let fanned = ev.eval(&PassConfig::with_look_ahead(16));

        for (i, m) in machines.iter().enumerate() {
            let mut solo = Evaluator::new(w.as_ref(), std::slice::from_ref(m));
            let alone = solo.eval(&PassConfig::with_look_ahead(16));
            assert_eq!(
                alone.stats[0].cycles, fanned.stats[i].cycles,
                "fan-out must be bit-identical to a dedicated run on {}",
                m.name
            );
        }
    }
}
