//! The candidate evaluator: one interpretation per configuration
//! point, fanned out to every machine of the grid row.
//!
//! An [`Evaluator`] is constructed per (workload, machine set); its
//! point cache is keyed by the [`PassConfig`] value itself (`Eq +
//! Hash`), so the full cache key is conceptually `(workload,
//! machine-set, config)` — two strategies (or two machines' searches)
//! requesting the same point pay for it once. Evaluating a point
//! compiles the candidate kernel through `swpf-core`'s pass pipeline,
//! verifies it, interprets it **once**, and fans the retire-event
//! stream out to all machines' timing models via the `swpf-sim` replay
//! paths ([`swpf_sim::run_module_on_machines`]) — so cost scales with
//! candidates, not candidates × machines.
//!
//! **Compile cost is shared too.** The evaluator builds the workload's
//! baseline module once and clones it per candidate (IDs are
//! preserved), so one primed `swpf-pass`
//! [`AnalysisManager`] serves every candidate's pre-mutation analyses:
//! each pipeline run gets a [`fork`](AnalysisManager::fork) of the
//! shared cache, and its post-mutation invalidations stay in the fork.
//! Across a 25-point search the dominators/loops/induction-variable/
//! root analyses are computed once instead of once per candidate
//! (measured in `BENCH_pass.json`; disable with
//! [`Evaluator::without_analysis_caching`] for A/B runs).
//!
//! Everything is deterministic: workloads build deterministic inputs,
//! simulation is execution-driven, and the cache only memoises — a
//! tuning run's every reported number is a pure function of (workload,
//! machine set, search space, strategy).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use swpf_core::{PassConfig, PassReport};
use swpf_ir::Module;
use swpf_pass::AnalysisManager;
use swpf_sim::{run_module_on_machines, MachineConfig, SimStats};
use swpf_workloads::Workload;

/// One evaluated point of the parameter space: the configuration, what
/// the pass did with it, and the timing of the resulting kernel on
/// every machine of the evaluator's set.
#[derive(Debug, Clone)]
pub struct EvaluatedPoint {
    /// The configuration the candidate kernel was compiled with.
    pub config: PassConfig,
    /// Per-machine statistics, in the evaluator's machine order.
    pub stats: Vec<SimStats>,
    /// Prefetch instructions the pass emitted at this point.
    pub prefetches: usize,
}

/// Compiles, interprets, and times candidate configurations for one
/// workload on one machine set, memoising by configuration point.
pub struct Evaluator<'a> {
    workload: &'a dyn Workload,
    machines: &'a [MachineConfig],
    /// The pristine kernel, built once; candidates compile clones.
    baseline: Module,
    /// Analyses of `baseline`, primed on the first compile and forked
    /// per candidate compile.
    shared_analyses: AnalysisManager,
    analysis_caching: bool,
    /// Whether the shared cache has been primed yet (lazily, inside the
    /// first timed compile, so the priming cost is attributed to the
    /// cached mode that benefits from it — and never paid when caching
    /// is disabled).
    primed: bool,
    index: HashMap<PassConfig, usize>,
    points: Vec<Arc<EvaluatedPoint>>,
    interpretations: usize,
    compile_ns: u128,
    analyses_computed: usize,
}

impl<'a> Evaluator<'a> {
    /// An evaluator for `workload` on `machines` with empty caches.
    #[must_use]
    pub fn new(workload: &'a dyn Workload, machines: &'a [MachineConfig]) -> Self {
        Evaluator {
            workload,
            machines,
            baseline: workload.build_baseline(),
            shared_analyses: AnalysisManager::new(),
            analysis_caching: true,
            primed: false,
            index: HashMap::new(),
            points: Vec::new(),
            interpretations: 0,
            compile_ns: 0,
            analyses_computed: 0,
        }
    }

    /// Disable the shared analysis cache: every candidate compile
    /// recomputes all analyses from scratch (the pre-pass-manager
    /// behaviour). Used by the `pass_probe` A/B benchmark.
    #[must_use]
    pub fn without_analysis_caching(mut self) -> Self {
        self.analysis_caching = false;
        self
    }

    /// The machine set results are reported over.
    #[must_use]
    pub fn machines(&self) -> &[MachineConfig] {
        self.machines
    }

    /// Display name of the workload being tuned.
    #[must_use]
    pub fn workload_name(&self) -> &'static str {
        self.workload.name()
    }

    /// Compile one candidate: clone the pristine baseline, run
    /// `config`'s pass pipeline over a fork of the shared analysis
    /// cache, and verify the output. Every call pays (no memoisation —
    /// [`Evaluator::eval`] memoises whole points); the accumulated cost
    /// is readable via [`Evaluator::compile_seconds`].
    ///
    /// # Panics
    /// If the pipeline output fails verification — a pass bug.
    pub fn compile_candidate(&mut self, config: &PassConfig) -> (Module, PassReport) {
        let _span = swpf_obs::span("tune:compile");
        let t0 = Instant::now();
        if self.analysis_caching && !self.primed {
            // Prime once, inside the timed region: the one-off cost of
            // the shared cache is honestly part of the cached mode.
            for fid in self.baseline.func_ids().collect::<Vec<_>>() {
                let _ = self
                    .shared_analyses
                    .func_analysis(self.baseline.function(fid), fid);
            }
            self.primed = true;
        }
        let mut module = self.baseline.clone();
        let mut am = if self.analysis_caching {
            self.shared_analyses.fork()
        } else {
            AnalysisManager::new()
        };
        let report = swpf_core::run_pipeline(&mut module, config, &mut am);
        swpf_ir::verifier::verify_module(&module).expect("pass output verifies");
        self.compile_ns += t0.elapsed().as_nanos();
        self.analyses_computed += am.analyses_computed();
        (module, report)
    }

    /// Evaluate one configuration point: on a cache miss, compile the
    /// candidate ([`Evaluator::compile_candidate`]) and simulate it on
    /// every machine off a single interpretation. Cached points are
    /// returned without any work.
    ///
    /// # Panics
    /// If the pass output fails verification or the simulation traps —
    /// both are fatal configuration errors.
    pub fn eval(&mut self, config: &PassConfig) -> Arc<EvaluatedPoint> {
        if let Some(&i) = self.index.get(config) {
            swpf_obs::count("tune.point_cache.hit", 1);
            return Arc::clone(&self.points[i]);
        }
        swpf_obs::count("tune.point_cache.miss", 1);
        let _span = swpf_obs::span("tune:eval");
        let (module, report) = self.compile_candidate(config);
        let configs: Vec<&MachineConfig> = self.machines.iter().collect();
        let stats = run_module_on_machines(&configs, &module, "kernel", |interp| {
            self.workload.setup(interp)
        });
        self.interpretations += 1;
        let point = Arc::new(EvaluatedPoint {
            config: config.clone(),
            stats,
            prefetches: report.total_prefetches(),
        });
        self.index.insert(config.clone(), self.points.len());
        self.points.push(Arc::clone(&point));
        point
    }

    /// Simulated cycles of `config` on machine index `machine`.
    ///
    /// # Panics
    /// If `machine` is out of range of the machine set.
    pub fn cycles(&mut self, config: &PassConfig, machine: usize) -> u64 {
        assert!(machine < self.machines.len(), "machine index out of range");
        self.eval(config).stats[machine].cycles
    }

    /// Interpretations actually paid (cache misses) — with an
    /// N-machine set, the fan-out makes this the whole cost: it counts
    /// candidates, not candidates × machines.
    #[must_use]
    pub fn interpretations(&self) -> usize {
        self.interpretations
    }

    /// Host seconds spent compiling candidates (clone + pipeline +
    /// verify), across every [`Evaluator::compile_candidate`] call.
    #[must_use]
    pub fn compile_seconds(&self) -> f64 {
        self.compile_ns as f64 * 1e-9
    }

    /// Individual analyses computed during candidate compiles (forks'
    /// cache misses), *excluding* the one-time lazy priming of the
    /// shared cache (whose wall cost [`Evaluator::compile_seconds`]
    /// does include). Zero when every candidate was served entirely
    /// from the primed cache.
    #[must_use]
    pub fn analyses_computed(&self) -> usize {
        self.analyses_computed
    }

    /// Every distinct point evaluated so far, in first-request order.
    #[must_use]
    pub fn points(&self) -> &[Arc<EvaluatedPoint>] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_workloads::{Scale, WorkloadId};

    #[test]
    fn points_are_cached_by_config_value_and_fan_out_to_all_machines() {
        let w = WorkloadId::Is.instantiate(Scale::Test);
        let machines = [MachineConfig::xeon_phi(), MachineConfig::a53()];
        let mut ev = Evaluator::new(w.as_ref(), &machines);

        let a = ev.eval(&PassConfig::default());
        assert_eq!(a.stats.len(), 2, "one SimStats per machine");
        assert!(a.stats.iter().all(|s| s.cycles > 0));
        assert!(a.prefetches > 0, "IS has an indirect access to prefetch");
        assert_eq!(ev.interpretations(), 1);

        // Same point (even via a differently-constructed equal config):
        // served from cache, no new interpretation.
        let b = ev.eval(&PassConfig::with_look_ahead(64));
        assert_eq!(ev.interpretations(), 1);
        assert_eq!(a.stats[0].cycles, b.stats[0].cycles);

        // A genuinely different point pays one more interpretation.
        let _ = ev.eval(&PassConfig::with_look_ahead(8));
        assert_eq!(ev.interpretations(), 2);
        assert_eq!(ev.points().len(), 2);

        // A different pipeline is a different point of the space.
        let _ = ev.eval(&PassConfig::with_pipeline("swpf,cse,dce"));
        assert_eq!(ev.interpretations(), 3);
    }

    #[test]
    fn fan_out_matches_dedicated_single_machine_runs() {
        let w = WorkloadId::Hj2.instantiate(Scale::Test);
        let machines = [MachineConfig::xeon_phi(), MachineConfig::a53()];
        let mut ev = Evaluator::new(w.as_ref(), &machines);
        let fanned = ev.eval(&PassConfig::with_look_ahead(16));

        for (i, m) in machines.iter().enumerate() {
            let mut solo = Evaluator::new(w.as_ref(), std::slice::from_ref(m));
            let alone = solo.eval(&PassConfig::with_look_ahead(16));
            assert_eq!(
                alone.stats[0].cycles, fanned.stats[i].cycles,
                "fan-out must be bit-identical to a dedicated run on {}",
                m.name
            );
        }
    }

    #[test]
    fn shared_analysis_cache_serves_every_candidate() {
        let w = WorkloadId::Is.instantiate(Scale::Test);
        let machines = [MachineConfig::a53()];
        let mut cached = Evaluator::new(w.as_ref(), &machines);
        for c in [2, 8, 32, 128] {
            let _ = cached.eval(&PassConfig::with_look_ahead(c));
        }
        assert_eq!(
            cached.analyses_computed(),
            0,
            "all pre-mutation analyses come from the primed shared cache"
        );

        let mut uncached = Evaluator::new(w.as_ref(), &machines).without_analysis_caching();
        for c in [2, 8, 32, 128] {
            let _ = uncached.eval(&PassConfig::with_look_ahead(c));
        }
        assert!(
            uncached.analyses_computed() >= 4 * 4,
            "uncached: ≥ 4 analyses × 4 candidates, got {}",
            uncached.analyses_computed()
        );
    }

    #[test]
    fn caching_does_not_change_results() {
        let w = WorkloadId::Cg.instantiate(Scale::Test);
        let machines = [MachineConfig::xeon_phi()];
        let config = PassConfig::with_look_ahead(24);
        let mut cached = Evaluator::new(w.as_ref(), &machines);
        let mut uncached = Evaluator::new(w.as_ref(), &machines).without_analysis_caching();
        let a = cached.eval(&config);
        let b = uncached.eval(&config);
        assert_eq!(a.stats[0].cycles, b.stats[0].cycles);
        assert_eq!(a.prefetches, b.prefetches);
    }
}
