//! The searchable slices of the pass's parameter space.
//!
//! Two concrete spaces behind one [`Space`] abstraction:
//!
//! * [`SearchSpace`] — the paper's knob space. The primary axis is the
//!   look-ahead distance `c` of eq. (1) — the knob Fig. 2 motivates and
//!   Fig. 6 sweeps. Secondary axes are pass toggles (the stride
//!   companion of §4.3, hoisting of §4.6) that strategies exploring the
//!   full space (hill-climbing) may flip.
//! * [`PipelineSpace`] — the cleanup-pipeline space: candidate pass
//!   *orderings* (`"swpf,gvn,sccp,licm,cse,dce"` and friends), so the
//!   same strategies search which cleanup pipeline minimises simulated
//!   cycles per workload × machine.

use swpf_core::{PassConfig, Pipeline};

/// A finite, indexable slice of [`PassConfig`] space that the
/// [`crate::Strategy`] implementations can search: an ordered axis of
/// candidate configurations plus a distinguished heuristic (seed)
/// configuration. Object-safe so strategies stay `&dyn`-composable.
pub trait Space {
    /// Number of points on the primary axis.
    fn len(&self) -> usize;

    /// Whether the primary axis is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configuration at axis index `i` (non-axis knobs from the
    /// heuristic).
    fn at(&self, i: usize) -> PassConfig;

    /// The reference configuration every strategy evaluates first, so a
    /// tuned result is never worse than it by construction.
    fn heuristic(&self) -> &PassConfig;

    /// The axis index nearest the heuristic — the hill-climber's
    /// deterministic starting cell.
    fn heuristic_index(&self) -> usize;

    /// Whether strategies exploring the full space may toggle the
    /// stride companion (§4.3).
    fn toggle_stride_companion(&self) -> bool {
        false
    }

    /// Whether strategies exploring the full space may toggle hoisting
    /// (§4.6).
    fn toggle_hoisting(&self) -> bool {
        false
    }

    /// Validate the shape strategies rely on.
    ///
    /// # Panics
    /// On a malformed space — a tuning-configuration error.
    fn assert_well_formed(&self) {
        assert!(self.len() > 0, "empty search space");
    }
}

/// Candidate look-ahead distances of [`SearchSpace::paper_default`]:
/// 2–256 iterations in ~1.25× steps. Dense enough that bracketing
/// search has real work to do (25 points vs. Fig. 6's 7), wide enough
/// to cover both mis-scheduling cliffs, and containing the paper's
/// heuristic choice `c = 64` so the heuristic is always a candidate.
pub const PAPER_DISTANCES: [i64; 25] = [
    2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 56, 64, 80, 96, 112, 128, 160, 192,
    256,
];

/// The slice of [`PassConfig`] space a tuning run searches.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Candidate look-ahead distances, strictly ascending.
    pub look_aheads: Vec<i64>,
    /// Allow strategies that explore the full space to toggle the
    /// stride companion (§4.3).
    pub toggle_stride_companion: bool,
    /// Allow strategies that explore the full space to toggle hoisting
    /// (§4.6).
    pub toggle_hoisting: bool,
    /// The reference configuration: the paper's static heuristic
    /// (`c = 64`, all transforms on). Every strategy evaluates it, so a
    /// tuned result is never worse than the heuristic by construction,
    /// and non-distance knobs of distance-only searches come from here.
    pub heuristic: PassConfig,
}

impl SearchSpace {
    /// The default tuning space: [`PAPER_DISTANCES`] plus the stride
    /// toggle, anchored at the paper's heuristic configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        SearchSpace {
            look_aheads: PAPER_DISTANCES.to_vec(),
            toggle_stride_companion: true,
            toggle_hoisting: false,
            heuristic: PassConfig::default(),
        }
    }

    /// A distance-only space over the given axis (no toggles).
    #[must_use]
    pub fn distance_only(look_aheads: Vec<i64>) -> Self {
        SearchSpace {
            look_aheads,
            toggle_stride_companion: false,
            toggle_hoisting: false,
            heuristic: PassConfig::default(),
        }
    }

    /// Number of points on the distance axis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.look_aheads.len()
    }

    /// Whether the distance axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.look_aheads.is_empty()
    }

    /// The config at distance-axis index `i`, all other knobs taken
    /// from the heuristic.
    ///
    /// # Panics
    /// If `i` is out of range.
    #[must_use]
    pub fn at(&self, i: usize) -> PassConfig {
        PassConfig {
            look_ahead: self.look_aheads[i],
            ..self.heuristic.clone()
        }
    }

    /// Index of the distance-axis point closest to the heuristic's
    /// look-ahead — the hill-climber's deterministic starting cell.
    ///
    /// # Panics
    /// If the axis is empty.
    #[must_use]
    pub fn heuristic_index(&self) -> usize {
        assert!(!self.is_empty(), "empty distance axis");
        self.look_aheads
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| (c - self.heuristic.look_ahead).abs())
            .map(|(i, _)| i)
            .expect("non-empty axis")
    }

    /// Validate the axis shape strategies rely on: non-empty and
    /// strictly ascending (bracketing search assumes an ordered axis).
    ///
    /// # Panics
    /// On an empty or unsorted axis — a tuning-configuration error.
    pub fn assert_well_formed(&self) {
        assert!(!self.is_empty(), "empty look-ahead axis");
        assert!(
            self.look_aheads.windows(2).all(|w| w[0] < w[1]),
            "look-ahead axis must be strictly ascending: {:?}",
            self.look_aheads
        );
    }
}

impl Space for SearchSpace {
    fn len(&self) -> usize {
        SearchSpace::len(self)
    }

    fn at(&self, i: usize) -> PassConfig {
        SearchSpace::at(self, i)
    }

    fn heuristic(&self) -> &PassConfig {
        &self.heuristic
    }

    fn heuristic_index(&self) -> usize {
        SearchSpace::heuristic_index(self)
    }

    fn toggle_stride_companion(&self) -> bool {
        self.toggle_stride_companion
    }

    fn toggle_hoisting(&self) -> bool {
        self.toggle_hoisting
    }

    fn assert_well_formed(&self) {
        SearchSpace::assert_well_formed(self);
    }
}

/// The searchable space of cleanup-pipeline *orderings*: each axis
/// point is the heuristic configuration compiled through a different
/// pass pipeline. The axis is categorical (no unimodality claim), so
/// the exhaustive oracle and the budgeted hill-climb are the natural
/// strategies; both seed with the heuristic (default) pipeline, so a
/// searched pipeline is never worse than the default by construction.
#[derive(Debug, Clone)]
pub struct PipelineSpace {
    /// Candidate pipelines, in fixed probe order.
    pub pipelines: Vec<Pipeline>,
    /// The reference configuration: the paper heuristic's knobs with
    /// the default full cleanup pipeline ([`DEFAULT_FULL_PIPELINE`]).
    pub heuristic: PassConfig,
}

/// The default (heuristic) cleanup pipeline a searched one must beat:
/// prefetch generation, the global passes in dependency-friendly order
/// (GVN exposes loop-invariant leaders for LICM; SCCP folds before
/// local cleanup), then local CSE + DCE.
pub const DEFAULT_FULL_PIPELINE: &str = "swpf,gvn,sccp,licm,cse,dce";

impl PipelineSpace {
    /// The curated candidate set: the bare pass (no cleanup), the
    /// local-only pipeline, single-global-pass pipelines, and the full
    /// pipeline in several orderings. Small enough for the
    /// exhaustive oracle at every scale, diverse enough that ordering
    /// effects (e.g. GVN before vs. after LICM) are observable.
    ///
    /// # Panics
    /// Never: every spec in the set is valid.
    #[must_use]
    pub fn paper_default() -> Self {
        let specs = [
            DEFAULT_FULL_PIPELINE,
            "swpf",
            "swpf,cse,dce",
            "swpf,gvn,dce",
            "swpf,licm,cse,dce",
            "swpf,sccp,gvn,licm,cse,dce",
            "swpf,licm,gvn,sccp,cse,dce",
            "swpf,gvn,sccp,licm,dce",
        ];
        let pipelines = specs
            .iter()
            .map(|s| s.parse::<Pipeline>().expect("curated specs are valid"))
            .collect();
        let heuristic = PassConfig {
            pipeline: DEFAULT_FULL_PIPELINE
                .parse()
                .expect("default pipeline spec is valid"),
            ..PassConfig::default()
        };
        PipelineSpace {
            pipelines,
            heuristic,
        }
    }
}

impl Space for PipelineSpace {
    fn len(&self) -> usize {
        self.pipelines.len()
    }

    fn at(&self, i: usize) -> PassConfig {
        PassConfig {
            pipeline: self.pipelines[i].clone(),
            ..self.heuristic.clone()
        }
    }

    fn heuristic(&self) -> &PassConfig {
        &self.heuristic
    }

    fn heuristic_index(&self) -> usize {
        assert!(!self.pipelines.is_empty(), "empty pipeline axis");
        self.pipelines
            .iter()
            .position(|p| *p == self.heuristic.pipeline)
            .unwrap_or(0)
    }

    fn assert_well_formed(&self) {
        assert!(!self.pipelines.is_empty(), "empty pipeline axis");
        for (i, p) in self.pipelines.iter().enumerate() {
            assert!(
                !self.pipelines[..i].contains(p),
                "duplicate pipeline candidate `{p}`"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_well_formed_and_contains_the_heuristic() {
        let space = SearchSpace::paper_default();
        space.assert_well_formed();
        let hi = space.heuristic_index();
        assert_eq!(space.look_aheads[hi], 64);
        assert_eq!(space.at(hi), PassConfig::default());
    }

    #[test]
    fn heuristic_index_snaps_to_the_nearest_axis_point() {
        let mut space = SearchSpace::distance_only(vec![4, 16, 256]);
        space.heuristic = PassConfig::with_look_ahead(64);
        assert_eq!(space.heuristic_index(), 1, "16 is nearer 64 than 256 is");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_axes_are_rejected() {
        SearchSpace::distance_only(vec![16, 4]).assert_well_formed();
    }

    #[test]
    fn pipeline_space_is_well_formed_and_seeded_at_the_default() {
        let ps = PipelineSpace::paper_default();
        ps.assert_well_formed();
        assert_eq!(
            ps.pipelines[ps.heuristic_index()],
            ps.heuristic.pipeline,
            "the hill-climber starts at the default pipeline"
        );
        assert_eq!(ps.heuristic.pipeline.to_string(), DEFAULT_FULL_PIPELINE);
        // The bare pass and the local-only pipeline are candidates, so
        // the search can conclude cleanup does not pay on a cell.
        assert!(ps.pipelines.iter().any(|p| p.to_string() == "swpf"));
        assert!(ps.pipelines.iter().any(|p| p.to_string() == "swpf,cse,dce"));
        // Non-pipeline knobs of every axis point come from the heuristic.
        for i in 0..Space::len(&ps) {
            let c = ps.at(i);
            assert_eq!(c.look_ahead, ps.heuristic.look_ahead);
            assert_eq!(c.stride_companion, ps.heuristic.stride_companion);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate pipeline")]
    fn duplicate_pipeline_candidates_are_rejected() {
        let mut ps = PipelineSpace::paper_default();
        ps.pipelines.push("swpf".parse().unwrap());
        ps.assert_well_formed();
    }
}
