//! The searchable slice of the pass's parameter space.
//!
//! The primary axis is the look-ahead distance `c` of eq. (1) — the
//! knob Fig. 2 motivates and Fig. 6 sweeps. Secondary axes are pass
//! toggles (the stride companion of §4.3, hoisting of §4.6) that
//! strategies exploring the full space (hill-climbing) may flip.

use swpf_core::PassConfig;

/// Candidate look-ahead distances of [`SearchSpace::paper_default`]:
/// 2–256 iterations in ~1.25× steps. Dense enough that bracketing
/// search has real work to do (25 points vs. Fig. 6's 7), wide enough
/// to cover both mis-scheduling cliffs, and containing the paper's
/// heuristic choice `c = 64` so the heuristic is always a candidate.
pub const PAPER_DISTANCES: [i64; 25] = [
    2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 56, 64, 80, 96, 112, 128, 160, 192,
    256,
];

/// The slice of [`PassConfig`] space a tuning run searches.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Candidate look-ahead distances, strictly ascending.
    pub look_aheads: Vec<i64>,
    /// Allow strategies that explore the full space to toggle the
    /// stride companion (§4.3).
    pub toggle_stride_companion: bool,
    /// Allow strategies that explore the full space to toggle hoisting
    /// (§4.6).
    pub toggle_hoisting: bool,
    /// The reference configuration: the paper's static heuristic
    /// (`c = 64`, all transforms on). Every strategy evaluates it, so a
    /// tuned result is never worse than the heuristic by construction,
    /// and non-distance knobs of distance-only searches come from here.
    pub heuristic: PassConfig,
}

impl SearchSpace {
    /// The default tuning space: [`PAPER_DISTANCES`] plus the stride
    /// toggle, anchored at the paper's heuristic configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        SearchSpace {
            look_aheads: PAPER_DISTANCES.to_vec(),
            toggle_stride_companion: true,
            toggle_hoisting: false,
            heuristic: PassConfig::default(),
        }
    }

    /// A distance-only space over the given axis (no toggles).
    #[must_use]
    pub fn distance_only(look_aheads: Vec<i64>) -> Self {
        SearchSpace {
            look_aheads,
            toggle_stride_companion: false,
            toggle_hoisting: false,
            heuristic: PassConfig::default(),
        }
    }

    /// Number of points on the distance axis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.look_aheads.len()
    }

    /// Whether the distance axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.look_aheads.is_empty()
    }

    /// The config at distance-axis index `i`, all other knobs taken
    /// from the heuristic.
    ///
    /// # Panics
    /// If `i` is out of range.
    #[must_use]
    pub fn at(&self, i: usize) -> PassConfig {
        PassConfig {
            look_ahead: self.look_aheads[i],
            ..self.heuristic.clone()
        }
    }

    /// Index of the distance-axis point closest to the heuristic's
    /// look-ahead — the hill-climber's deterministic starting cell.
    ///
    /// # Panics
    /// If the axis is empty.
    #[must_use]
    pub fn heuristic_index(&self) -> usize {
        assert!(!self.is_empty(), "empty distance axis");
        self.look_aheads
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| (c - self.heuristic.look_ahead).abs())
            .map(|(i, _)| i)
            .expect("non-empty axis")
    }

    /// Validate the axis shape strategies rely on: non-empty and
    /// strictly ascending (bracketing search assumes an ordered axis).
    ///
    /// # Panics
    /// On an empty or unsorted axis — a tuning-configuration error.
    pub fn assert_well_formed(&self) {
        assert!(!self.is_empty(), "empty look-ahead axis");
        assert!(
            self.look_aheads.windows(2).all(|w| w[0] < w[1]),
            "look-ahead axis must be strictly ascending: {:?}",
            self.look_aheads
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_well_formed_and_contains_the_heuristic() {
        let space = SearchSpace::paper_default();
        space.assert_well_formed();
        let hi = space.heuristic_index();
        assert_eq!(space.look_aheads[hi], 64);
        assert_eq!(space.at(hi), PassConfig::default());
    }

    #[test]
    fn heuristic_index_snaps_to_the_nearest_axis_point() {
        let mut space = SearchSpace::distance_only(vec![4, 16, 256]);
        space.heuristic = PassConfig::with_look_ahead(64);
        assert_eq!(space.heuristic_index(), 1, "16 is nearer 64 than 256 is");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_axes_are_rejected() {
        SearchSpace::distance_only(vec![16, 4]).assert_well_formed();
    }
}
