//! Search strategies over the prefetch parameter space.
//!
//! Three strategies behind one [`Strategy`] trait:
//!
//! * [`Exhaustive`] — evaluate every distance-axis point: the oracle
//!   the other strategies are measured against (%-of-oracle).
//! * [`GoldenSection`] — a discrete golden-section (Fibonacci-bracket)
//!   search exploiting the shape Fig. 6 establishes: the speedup curve
//!   over look-ahead distance rises to an interior optimum and falls
//!   off on both sides (too small fetches too late, too big pollutes
//!   the cache), i.e. cycles are unimodal in the distance. `O(log n)`
//!   evaluations; on a strictly unimodal curve it returns the
//!   exhaustive optimum.
//! * [`HillClimb`] — budgeted local search over the full space
//!   (distance steps plus pass toggles such as the stride companion),
//!   for the secondary axes bracketing cannot cover.
//!
//! Every strategy evaluates the paper-heuristic configuration first and
//! returns the best point it *visited*, so a tuned configuration is
//! never worse than the heuristic by construction. Searches are fully
//! deterministic: fixed probe orders, first-visit tie-breaking, no
//! randomness.

use crate::eval::Evaluator;
use crate::report::{EvalPoint, Outcome};
use crate::space::Space;
use std::collections::HashMap;
use swpf_core::PassConfig;

/// A search procedure for the best [`PassConfig`] of one
/// (workload, machine) cell. Strategies search any [`Space`] — the
/// paper's knob space ([`crate::SearchSpace`]) or the cleanup-pipeline
/// orderings ([`crate::PipelineSpace`]).
pub trait Strategy {
    /// Stable strategy name for reports and artifact labels.
    fn name(&self) -> &'static str;

    /// Search `space` for the configuration minimising simulated cycles
    /// on machine index `machine` of `eval`'s machine set.
    fn tune(&self, space: &dyn Space, machine: usize, eval: &mut Evaluator<'_>) -> Outcome;
}

/// Per-search probe bookkeeping on top of the shared evaluator: counts
/// each *distinct* configuration the search requests exactly once (the
/// honest per-search cost, independent of what the cross-strategy cache
/// already holds) and remembers the visit order for the [`Outcome`].
/// Like the evaluator's point cache, the memo is keyed on the
/// [`PassConfig`] value itself.
struct Probe<'e, 'a> {
    eval: &'e mut Evaluator<'a>,
    machine: usize,
    seen: HashMap<PassConfig, u64>,
    visited: Vec<EvalPoint>,
}

impl<'e, 'a> Probe<'e, 'a> {
    fn new(eval: &'e mut Evaluator<'a>, machine: usize) -> Self {
        Probe {
            eval,
            machine,
            seen: HashMap::new(),
            visited: Vec::new(),
        }
    }

    /// Cycles of `config` on the target machine; re-requests are free.
    fn cycles(&mut self, config: &PassConfig) -> u64 {
        if let Some(&c) = self.seen.get(config) {
            return c;
        }
        let cycles = self.eval.cycles(config, self.machine);
        self.seen.insert(config.clone(), cycles);
        self.visited.push(EvalPoint {
            config: config.clone(),
            cycles,
        });
        cycles
    }

    fn points_evaluated(&self) -> usize {
        self.visited.len()
    }

    /// Close the search: best = minimum cycles, earliest visit on ties.
    /// When profiling is on, the convergence trajectory is published:
    /// evaluations paid, strict improvements along the visit order, and
    /// how many evaluations it took to first reach the winner.
    fn outcome(self, strategy: &'static str) -> Outcome {
        let best = self
            .visited
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (p.cycles, *i))
            .map(|(i, _)| i)
            .expect("every strategy visits at least the heuristic");
        if swpf_obs::enabled() {
            let improvements = self
                .visited
                .iter()
                .scan(u64::MAX, |min, p| {
                    let improved = p.cycles < *min;
                    *min = (*min).min(p.cycles);
                    Some(u64::from(improved))
                })
                .sum::<u64>()
                .saturating_sub(1); // the first visit seeds, not improves
            swpf_obs::count(format!("tune.evals.{strategy}"), self.visited.len() as u64);
            swpf_obs::count(format!("tune.improvements.{strategy}"), improvements);
            swpf_obs::record("tune.best_found_at_eval", best as u64 + 1);
        }
        Outcome {
            strategy,
            visited: self.visited,
            best,
        }
    }
}

/// Evaluate every point of the distance axis — the oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive;

impl Strategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn tune(&self, space: &dyn Space, machine: usize, eval: &mut Evaluator<'_>) -> Outcome {
        space.assert_well_formed();
        let mut probe = Probe::new(eval, machine);
        probe.cycles(&space.heuristic().clone());
        for i in 0..space.len() {
            probe.cycles(&space.at(i));
        }
        probe.outcome(self.name())
    }
}

/// Discrete golden-section search over the distance axis (Fibonacci
/// bracket: one new evaluation per contraction).
#[derive(Debug, Clone, Copy, Default)]
pub struct GoldenSection;

impl Strategy for GoldenSection {
    fn name(&self) -> &'static str {
        "golden"
    }

    fn tune(&self, space: &dyn Space, machine: usize, eval: &mut Evaluator<'_>) -> Outcome {
        space.assert_well_formed();
        let mut probe = Probe::new(eval, machine);
        probe.cycles(&space.heuristic().clone());
        let mut f = |i: usize| probe.cycles(&space.at(i));
        let _ = bracket_argmin(space.len(), &mut f);
        probe.outcome(self.name())
    }
}

/// Budgeted hill-climbing over the full space: distance steps of ±1
/// axis index plus the toggles the space exposes. Moves to the best
/// strictly-improving neighbour until a local optimum or the budget
/// (maximum distinct evaluations) is reached.
#[derive(Debug, Clone, Copy)]
pub struct HillClimb {
    /// Maximum distinct configuration points to evaluate. The
    /// mandatory heuristic seed counts towards it (and is evaluated
    /// even when the budget is zero — every strategy returns at least
    /// the heuristic).
    pub budget: usize,
}

impl Default for HillClimb {
    /// 16 points: enough to walk half the default distance axis or
    /// flip every toggle several times, a fraction of the exhaustive
    /// sweep's cost.
    fn default() -> Self {
        HillClimb { budget: 16 }
    }
}

/// Hill-climber state: a cell of the full (distance × toggles) space.
#[derive(Clone, Copy)]
struct Cell {
    idx: usize,
    stride: bool,
    hoist: bool,
}

impl Cell {
    fn config(self, space: &dyn Space) -> PassConfig {
        PassConfig {
            stride_companion: self.stride,
            enable_hoisting: self.hoist,
            ..space.at(self.idx)
        }
    }

    /// Deterministic neighbour order: the primary axis first (distance
    /// steps, or adjacent pipeline candidates), then the enabled
    /// toggles.
    fn neighbours(self, space: &dyn Space) -> Vec<Cell> {
        let mut out = Vec::with_capacity(4);
        if self.idx > 0 {
            out.push(Cell {
                idx: self.idx - 1,
                ..self
            });
        }
        if self.idx + 1 < space.len() {
            out.push(Cell {
                idx: self.idx + 1,
                ..self
            });
        }
        if space.toggle_stride_companion() {
            out.push(Cell {
                stride: !self.stride,
                ..self
            });
        }
        if space.toggle_hoisting() {
            out.push(Cell {
                hoist: !self.hoist,
                ..self
            });
        }
        out
    }
}

impl Strategy for HillClimb {
    fn name(&self) -> &'static str {
        "hill"
    }

    fn tune(&self, space: &dyn Space, machine: usize, eval: &mut Evaluator<'_>) -> Outcome {
        space.assert_well_formed();
        let mut probe = Probe::new(eval, machine);
        probe.cycles(&space.heuristic().clone());
        let mut here = Cell {
            idx: space.heuristic_index(),
            stride: space.heuristic().stride_companion,
            hoist: space.heuristic().enable_hoisting,
        };
        // The start cell differs from the heuristic only when its
        // look-ahead is off-axis; respect the budget either way.
        if probe.points_evaluated() >= self.budget {
            return probe.outcome(self.name());
        }
        let mut here_cycles = probe.cycles(&here.config(space));
        'climb: loop {
            let mut best: Option<(u64, Cell)> = None;
            for n in here.neighbours(space) {
                if probe.points_evaluated() >= self.budget {
                    break 'climb;
                }
                let c = probe.cycles(&n.config(space));
                if c < here_cycles && best.is_none_or(|(b, _)| c < b) {
                    best = Some((c, n));
                }
            }
            match best {
                Some((c, n)) => {
                    here = n;
                    here_cycles = c;
                }
                None => break, // local optimum
            }
        }
        probe.outcome(self.name())
    }
}

/// Minimise `f` over indices `0..n` with a Fibonacci bracket,
/// assuming `f` is unimodal (strictly decreasing, then strictly
/// increasing — on such input the returned index is the exact argmin).
/// Indices past `n-1` are treated as `+∞` (never probed), which
/// preserves unimodality, so any Fibonacci number ≥ `n-1` can bound the
/// bracket. One new evaluation per contraction: `O(log n)` probes.
///
/// The caller's `f` is expected to memoise (the bracket re-requests one
/// held interior point per step).
fn bracket_argmin(n: usize, f: &mut impl FnMut(usize) -> u64) -> usize {
    assert!(n > 0, "empty search domain");
    if n <= 4 {
        return scan_argmin(0, n - 1, n, f);
    }
    let mut fibs: Vec<usize> = vec![1, 1, 2, 3];
    while *fibs.last().expect("non-empty") < n - 1 {
        let l = fibs.len();
        fibs.push(fibs[l - 1] + fibs[l - 2]);
    }
    let mut g = |i: usize| if i < n { f(i) } else { u64::MAX };

    // Invariant: the minimum lies in [lo, lo + fibs[k]], with probes
    // held at lo + fibs[k-2] and lo + fibs[k-1]; each contraction
    // reuses one probe and evaluates one new point.
    let mut k = fibs.len() - 1;
    let mut lo = 0usize;
    let mut x1 = lo + fibs[k - 2];
    let mut x2 = lo + fibs[k - 1];
    let (mut f1, mut f2) = (g(x1), g(x2));
    while k > 3 {
        if f1 <= f2 {
            // Minimum in [lo, x2]; the old x1 becomes the new x2.
            k -= 1;
            x2 = x1;
            f2 = f1;
            x1 = lo + fibs[k - 2];
            f1 = g(x1);
        } else {
            // Minimum in [x1, lo + fibs[k]]; the old x2 becomes the
            // new x1.
            lo = x1;
            k -= 1;
            x1 = x2;
            f1 = f2;
            x2 = lo + fibs[k - 1];
            f2 = g(x2);
        }
    }
    // k == 3: a four-point bracket; its interior probes are memoised,
    // so the final scan adds at most the two edges.
    scan_argmin(lo, lo + fibs[k], n, f)
}

/// Argmin of `f` over `lo..=hi` clamped to `0..n` (first wins ties).
fn scan_argmin(lo: usize, hi: usize, n: usize, f: &mut impl FnMut(usize) -> u64) -> usize {
    (lo..=hi.min(n - 1))
        .map(|i| (i, f(i)))
        .min_by_key(|&(i, c)| (c, i))
        .expect("non-empty scan range")
        .0
}

/// Is `v` strictly unimodal (strictly decreasing to a unique minimum,
/// then strictly increasing)? This is the precondition under which
/// [`GoldenSection`] provably returns the exhaustive optimum; the shape
/// checks use it to decide which cells the golden-vs-oracle equivalence
/// claim applies to. Plateaus (equal neighbours) are conservatively
/// rejected.
#[must_use]
pub fn strictly_unimodal(v: &[u64]) -> bool {
    if v.len() < 2 {
        return true;
    }
    let m = v
        .iter()
        .enumerate()
        .min_by_key(|&(i, c)| (c, i))
        .expect("non-empty")
        .0;
    v[..=m].windows(2).all(|w| w[0] > w[1]) && v[m..].windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;
    use swpf_sim::MachineConfig;
    use swpf_workloads::{Scale, WorkloadId};

    /// Count distinct probes of a synthetic function.
    fn counted<'c>(
        f: impl Fn(usize) -> u64 + 'c,
        seen: &'c mut std::collections::HashSet<usize>,
    ) -> impl FnMut(usize) -> u64 + 'c {
        move |i| {
            seen.insert(i);
            f(i)
        }
    }

    #[test]
    fn bracket_finds_the_exact_argmin_of_every_strictly_unimodal_valley() {
        for n in 1..40usize {
            for t in 0..n {
                let mut seen = std::collections::HashSet::new();
                let mut f = counted(
                    move |i| {
                        let d = i as i64 - t as i64;
                        (d * d) as u64
                    },
                    &mut seen,
                );
                let got = bracket_argmin(n, &mut f);
                assert_eq!(got, t, "valley at {t} of {n}");
            }
        }
    }

    #[test]
    fn bracket_probes_at_most_half_the_axis_beyond_trivial_sizes() {
        // Worst-case probes ≈ k+1 where fibs[k] is the smallest
        // Fibonacci number ≥ n-1; that is ≤ n/2 from n = 16 on (the
        // default axis has 25 points).
        for n in 16..40usize {
            for t in 0..n {
                let mut seen = std::collections::HashSet::new();
                {
                    let mut f = counted(
                        move |i| {
                            let d = i as i64 - t as i64;
                            (d * d) as u64
                        },
                        &mut seen,
                    );
                    let _ = bracket_argmin(n, &mut f);
                }
                assert!(
                    seen.len() * 2 <= n,
                    "{} probes on an axis of {n} (valley at {t})",
                    seen.len()
                );
            }
        }
    }

    #[test]
    fn bracket_handles_monotone_edges() {
        // Strictly increasing (min at 0) and strictly decreasing
        // (min at n-1) are the degenerate unimodal shapes.
        for n in 1..30usize {
            let mut inc = |i: usize| i as u64 * 10;
            assert_eq!(bracket_argmin(n, &mut inc), 0);
            let mut dec = move |i: usize| (n - i) as u64 * 10;
            assert_eq!(bracket_argmin(n, &mut dec), n - 1);
        }
    }

    #[test]
    fn strictly_unimodal_classification() {
        assert!(strictly_unimodal(&[5, 3, 1, 2, 4]));
        assert!(strictly_unimodal(&[1, 2, 3])); // monotone counts
        assert!(strictly_unimodal(&[3, 2, 1]));
        assert!(strictly_unimodal(&[7]));
        assert!(!strictly_unimodal(&[5, 3, 3, 4]), "plateau rejected");
        assert!(!strictly_unimodal(&[1, 5, 2, 6, 3]), "two valleys");
    }

    /// End-to-end on a real (tiny) workload: every strategy beats or
    /// matches the heuristic by construction, golden stays within its
    /// O(log n) probe budget, and hill-climbing respects its budget.
    #[test]
    fn strategies_never_lose_to_the_heuristic_on_a_real_kernel() {
        let w = WorkloadId::Is.instantiate(Scale::Test);
        let machines = [MachineConfig::a53()];
        let space = SearchSpace::paper_default();
        let mut eval = Evaluator::new(w.as_ref(), &machines);

        let heuristic_cycles = eval.cycles(&space.heuristic, 0);
        for strategy in [
            &Exhaustive as &dyn Strategy,
            &GoldenSection,
            &HillClimb::default(),
        ] {
            let out = strategy.tune(&space, 0, &mut eval);
            assert!(
                out.best_cycles() <= heuristic_cycles,
                "{} must never lose to the heuristic",
                strategy.name()
            );
            assert_eq!(out.strategy, strategy.name());
        }
    }

    #[test]
    fn golden_visits_at_most_half_of_exhaustive_on_the_default_axis() {
        let w = WorkloadId::Hj2.instantiate(Scale::Test);
        let machines = [MachineConfig::xeon_phi()];
        let space = SearchSpace::paper_default();
        let mut eval = Evaluator::new(w.as_ref(), &machines);
        let full = Exhaustive.tune(&space, 0, &mut eval);
        let golden = GoldenSection.tune(&space, 0, &mut eval);
        assert!(
            golden.points_evaluated() * 2 <= full.points_evaluated(),
            "golden {} vs exhaustive {}",
            golden.points_evaluated(),
            full.points_evaluated()
        );
    }

    /// The same strategies search pipeline orderings: both the oracle
    /// and the budgeted hill-climb seed with the default full pipeline,
    /// so the searched pipeline is never worse than the default.
    #[test]
    fn strategies_search_pipeline_orderings_too() {
        let w = WorkloadId::Is.instantiate(Scale::Test);
        let machines = [MachineConfig::a53()];
        let space = crate::PipelineSpace::paper_default();
        let mut eval = Evaluator::new(w.as_ref(), &machines);
        let default_cycles = eval.cycles(&space.heuristic, 0);

        let oracle = Exhaustive.tune(&space, 0, &mut eval);
        assert!(oracle.best_cycles() <= default_cycles);
        assert_eq!(
            oracle.points_evaluated(),
            space.pipelines.len(),
            "the oracle visits every candidate pipeline exactly once"
        );

        let hill = HillClimb::default().tune(&space, 0, &mut eval);
        assert!(hill.best_cycles() <= default_cycles);
        assert_eq!(
            eval.interpretations(),
            space.pipelines.len(),
            "hill-climbing re-walks points the oracle already evaluated"
        );
    }

    #[test]
    fn hill_climb_respects_its_budget() {
        let w = WorkloadId::Ra.instantiate(Scale::Test);
        let machines = [MachineConfig::a53()];
        let space = SearchSpace::paper_default();
        let mut eval = Evaluator::new(w.as_ref(), &machines);
        let out = HillClimb { budget: 5 }.tune(&space, 0, &mut eval);
        assert!(out.points_evaluated() <= 5);

        // Tightest budgets: the seed points count too, even when the
        // heuristic's look-ahead is off the axis (start cell differs).
        let mut off_axis = SearchSpace::distance_only(vec![4, 8]);
        off_axis.heuristic = swpf_core::PassConfig::with_look_ahead(64);
        for budget in [0usize, 1, 2] {
            let out = HillClimb { budget }.tune(&off_axis, 0, &mut eval);
            assert!(
                out.points_evaluated() <= budget.max(1),
                "budget {budget}: evaluated {}",
                out.points_evaluated()
            );
        }
    }
}
