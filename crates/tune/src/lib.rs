//! # swpf-tune — search-based auto-tuning of prefetch parameters
//!
//! The paper's headline knob is the look-ahead distance `c`: Fig. 2
//! shows the too-small/too-big cliff, Fig. 6 sweeps it, and §Scheduling
//! argues the static heuristic `c = 64` lands near the optimum on every
//! evaluated system. This crate turns that claim into a measurement:
//! given a workload × machine grid, it *searches* for the best
//! [`PassConfig`] and reports how close the heuristic actually sits to
//! the oracle, per workload × machine.
//!
//! The subsystem is three layers:
//!
//! * [`SearchSpace`] ([`space`]) — the searchable slice of the pass's
//!   parameter space: a look-ahead distance axis (primary) plus pass
//!   toggles such as the stride companion (secondary). Behind the same
//!   [`Space`] abstraction, [`PipelineSpace`] exposes cleanup-pipeline
//!   *orderings* as the axis, so the identical strategies also search
//!   which pass pipeline minimises cycles per workload × machine.
//! * [`Evaluator`] ([`eval`]) — the cost model that makes search
//!   affordable: each candidate config is compiled through `swpf-core`
//!   and interpreted **once**, with its retire-event stream fanned out
//!   to every machine's timing model via the `swpf-sim` fan-out/replay
//!   paths — cost scales with candidates, not candidates × machines.
//!   Points are cached by `(workload, machine-set, config)` (the
//!   evaluator is per workload × machine-set; [`PassConfig::cache_key`]
//!   keys the config), so strategies and machines share evaluations.
//! * [`Strategy`] ([`search`]) — [`Exhaustive`] grid (the oracle),
//!   [`GoldenSection`] bracketing over the unimodal distance curve, and
//!   budgeted [`HillClimb`] over the full space.
//!
//! **Determinism contract:** a tuning run is a pure function of
//! (workload, machine set, search space, strategy). Workload inputs are
//! deterministic, simulation is execution-driven, probe orders are
//! fixed, ties break to the earliest visit, and the point cache only
//! memoises. Every strategy evaluates the paper heuristic first, so a
//! tuned config is **never worse than the heuristic** by construction.
//!
//! ```
//! use swpf_sim::MachineConfig;
//! use swpf_tune::{tune_cell, Evaluator, GoldenSection, SearchSpace};
//! use swpf_workloads::{Scale, WorkloadId};
//!
//! let workload = WorkloadId::Is.instantiate(Scale::Test);
//! let machines = [MachineConfig::a53()];
//! let space = SearchSpace::paper_default();
//! let mut eval = Evaluator::new(workload.as_ref(), &machines);
//! let report = tune_cell(&GoldenSection, &space, 0, &mut eval, None);
//! assert!(report.chosen_cycles <= report.heuristic_cycles);
//! ```

pub mod eval;
pub mod report;
pub mod search;
pub mod space;

pub use eval::{EvaluatedPoint, Evaluator};
pub use report::{EvalPoint, Outcome, TuneReport};
pub use search::{strictly_unimodal, Exhaustive, GoldenSection, HillClimb, Strategy};
pub use space::{PipelineSpace, SearchSpace, Space, DEFAULT_FULL_PIPELINE, PAPER_DISTANCES};

use swpf_core::PassConfig;

/// Tune one (workload, machine) cell with one strategy and fold the
/// outcome into a [`TuneReport`]. `oracle_cycles` is the exhaustive
/// sweep's optimum when one was run (enables `pct_of_oracle`).
///
/// # Panics
/// If `machine` is out of range of the evaluator's machine set.
pub fn tune_cell(
    strategy: &dyn Strategy,
    space: &dyn Space,
    machine: usize,
    eval: &mut Evaluator<'_>,
    oracle_cycles: Option<u64>,
) -> TuneReport {
    let outcome = strategy.tune(space, machine, eval);
    // The strategy already evaluated the heuristic (seed point), so
    // this is a cache hit, never a new interpretation.
    let heuristic_cycles = eval.cycles(space.heuristic(), machine);
    let machine_name = eval.machines()[machine].name;
    TuneReport {
        workload: eval.workload_name().to_string(),
        machine: machine_name,
        strategy: outcome.strategy,
        chosen: outcome.best_config().clone(),
        chosen_cycles: outcome.best_cycles(),
        heuristic_cycles,
        oracle_cycles,
        points: outcome.visited,
    }
}

/// The distance-axis cycle curve of a tuned cell, in axis order, from
/// an exhaustive outcome's visited points — the series whose
/// (strict) unimodality decides whether the golden-section ≡ oracle
/// equivalence applies (see [`strictly_unimodal`]).
#[must_use]
pub fn distance_curve(space: &SearchSpace, points: &[EvalPoint]) -> Vec<u64> {
    space
        .look_aheads
        .iter()
        .filter_map(|&c| {
            points
                .iter()
                .find(|p| {
                    p.config
                        == PassConfig {
                            look_ahead: c,
                            ..space.heuristic.clone()
                        }
                })
                .map(|p| p.cycles)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_sim::MachineConfig;
    use swpf_workloads::{Scale, WorkloadId};

    #[test]
    fn tune_cell_fills_the_report_and_shares_the_cache() {
        let w = WorkloadId::Is.instantiate(Scale::Test);
        let machines = [MachineConfig::xeon_phi(), MachineConfig::a53()];
        let space = SearchSpace::paper_default();
        let mut eval = Evaluator::new(w.as_ref(), &machines);

        let oracle = tune_cell(&Exhaustive, &space, 0, &mut eval, None);
        let after_oracle = eval.interpretations();
        let golden = tune_cell(
            &GoldenSection,
            &space,
            0,
            &mut eval,
            Some(oracle.chosen_cycles),
        );
        assert_eq!(
            eval.interpretations(),
            after_oracle,
            "golden re-probes points the exhaustive sweep evaluated: all cache hits"
        );
        assert_eq!(golden.workload, "IS");
        assert_eq!(golden.machine, "xeon_phi");
        assert!(golden.chosen_cycles <= golden.heuristic_cycles);
        assert!(golden.pct_of_oracle() <= 100.0 + 1e-9);

        // The second machine's search reuses the same fanned-out
        // evaluations: zero new interpretations for the whole cell.
        let other = tune_cell(&Exhaustive, &space, 1, &mut eval, None);
        assert_eq!(eval.interpretations(), after_oracle);
        assert_eq!(other.machine, "a53");
    }

    #[test]
    fn distance_curve_is_in_axis_order() {
        let space = SearchSpace::distance_only(vec![4, 8, 16]);
        let points = vec![
            EvalPoint {
                config: PassConfig::with_look_ahead(16),
                cycles: 30,
            },
            EvalPoint {
                config: PassConfig::with_look_ahead(4),
                cycles: 10,
            },
            EvalPoint {
                config: PassConfig::with_look_ahead(8),
                cycles: 20,
            },
        ];
        assert_eq!(distance_curve(&space, &points), vec![10, 20, 30]);
    }
}
