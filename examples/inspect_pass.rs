//! Inspect what the pass does and why: run every paper benchmark through
//! the analysis, print each accepted prefetch (chain length, offsets,
//! clamp source) and each rejection with its reason — the compiler
//! writer's view of Algorithm 1.
//!
//! Run with `cargo run --release --example inspect_pass`.

use swpf::pass::{run_on_module, PassConfig};
use swpf::workloads::{suite, Scale};

fn main() {
    let config = PassConfig::default();
    for w in suite(Scale::Test) {
        println!("==================== {} ====================", w.name());
        let mut m = w.build_baseline();
        let report = run_on_module(&mut m, &config);
        print!("{report}");
        let f = &report.functions[0];
        println!(
            "-> {} prefetch sequence(s), {} prefetch instruction(s), {} load(s) skipped\n",
            f.prefetches.len(),
            f.num_prefetch_insts(),
            f.skipped.len(),
        );
    }
    println!("Legend (paper mapping):");
    println!("  StrideOnly         left to the hardware prefetcher (§4.3)");
    println!("  ContainsNonIvPhi   complex control flow, e.g. pointer chases (line 40)");
    println!("  MayAliasStore      stores to an address-generation array (§4.2)");
    println!("  Conditional        loads conditional on loop-variant values (§4.2)");
    println!("  Subsumed           covered by a longer chain from another load");
    println!("  SameLineCovered    another prefetch already fetches this cache line");
}
