//! Quickstart: build an indirect-access kernel, run the automatic
//! prefetching pass, and measure the speedup on a simulated Cortex-A53.
//!
//! Run with `cargo run --release --example quickstart`.

use swpf::ir::interp::{Interp, RtVal};
use swpf::ir::prelude::*;
use swpf::pass::{run_on_module, PassConfig};
use swpf::sim::{run_on_machine, MachineConfig};

/// Build `for (i = 0; i < n; i++) sum += a[b[i]];` — the canonical
/// stride-indirect pattern from the paper's introduction.
fn build_kernel() -> Module {
    let mut m = Module::new("quickstart");
    let fid = m.declare_function("kernel", &[Type::Ptr, Type::Ptr, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new(m.function_mut(fid));
    let (a, bp, n) = (b.arg(0), b.arg(1), b.arg(2));
    let entry = b.entry_block();
    let header = b.create_block("header");
    let body = b.create_block("body");
    let exit = b.create_block("exit");
    let zero = b.const_i64(0);
    let one = b.const_i64(1);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, &[(entry, zero)]);
    let sum = b.phi(Type::I64, &[(entry, zero)]);
    let cond = b.icmp(Pred::Slt, i, n);
    b.cond_br(cond, body, exit);
    b.switch_to(body);
    let gb = b.gep(bp, i, 8);
    let idx = b.load(Type::I64, gb);
    let ga = b.gep(a, idx, 8);
    let v = b.load(Type::I64, ga);
    let sum2 = b.add(sum, v);
    let i2 = b.add(i, one);
    b.add_phi_incoming(i, body, i2);
    b.add_phi_incoming(sum, body, sum2);
    b.br(header);
    b.switch_to(exit);
    b.ret(Some(sum));
    let _ = b;
    m
}

fn simulate(m: &Module, n: u64) -> swpf::sim::SimStats {
    run_on_machine(&MachineConfig::a53(), m, "kernel", |interp: &mut Interp| {
        let a = interp.alloc_array(n, 8).expect("alloc a");
        let b = interp.alloc_array(n, 8).expect("alloc b");
        for i in 0..n {
            interp.mem().write(a + i * 8, 8, i * 3).expect("init a");
            // A scrambled permutation: every access a fresh cache line.
            interp
                .mem()
                .write(b + i * 8, 8, (i * 48_271 + 11) % n)
                .expect("init b");
        }
        vec![
            RtVal::Int(a as i64),
            RtVal::Int(b as i64),
            RtVal::Int(n as i64),
        ]
    })
}

fn main() {
    let n = 1 << 18; // 2 MiB per array: far beyond the simulated caches
    let baseline = build_kernel();

    // Run the paper's pass (c = 64, stride companion on).
    let mut prefetched = baseline.clone();
    let report = run_on_module(&mut prefetched, &PassConfig::default());
    println!("pass report:\n{report}");
    println!(
        "transformed kernel:\n{}",
        swpf::ir::printer::print_module(&prefetched)
    );

    let before = simulate(&baseline, n);
    let after = simulate(&prefetched, n);
    println!(
        "baseline : {:>12} cycles (IPC {:.2})",
        before.cycles,
        before.ipc()
    );
    println!(
        "prefetched: {:>12} cycles (IPC {:.2})",
        after.cycles,
        after.ipc()
    );
    println!(
        "speedup   : {:.2}x on an in-order Cortex-A53 model",
        after.speedup_vs(&before)
    );
}
