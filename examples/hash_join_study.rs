//! A domain-specific study: software prefetching for database hash-join
//! probes, across bucket occupancies and stagger depths (paper §5.1 HJ-2
//! / HJ-8, Fig. 7).
//!
//! Shows the decision a database engineer would actually face: how deep
//! to prefetch a bucket chain, and how the answer depends on whether the
//! machine can overlap misses on its own.
//!
//! Run with `cargo run --release --example hash_join_study`.

use swpf::sim::MachineConfig;
use swpf::workloads::hj::{ElemsPerBucket, HashJoin};
use swpf::workloads::{Scale, Workload};
use swpf_ir::interp::{Interp, RtVal};

fn simulate(machine: &MachineConfig, w: &HashJoin, m: &swpf::ir::Module) -> swpf::sim::SimStats {
    swpf::sim::run_on_machine(machine, m, "kernel", |interp: &mut Interp| -> Vec<RtVal> {
        w.setup(interp)
    })
}

fn main() {
    // Use smaller-than-paper inputs so the example finishes in seconds.
    let scale = Scale::Test;
    for epb in [ElemsPerBucket::Two, ElemsPerBucket::Eight] {
        let mut hj = HashJoin::new(scale, epb);
        // Upsize the test configuration a little so misses exist at all.
        hj.bucket_bits = 14;
        hj.probes = 1 << 15;
        println!(
            "=== {} ({} buckets, {} probes) ===",
            hj.name(),
            1u64 << hj.bucket_bits,
            hj.probes
        );
        for machine in [MachineConfig::haswell(), MachineConfig::a53()] {
            let base = simulate(&machine, &hj, &hj.build_baseline());
            print!("{:<8}", machine.name);
            for depth in 1..=4 {
                let s = simulate(&machine, &hj, &hj.build_manual_depth(64, depth));
                print!("  depth{depth} {:.2}x", s.speedup_vs(&base));
            }
            println!();
        }
        println!();
    }
    println!("Reading: HJ-2 has no chain, so depth > 1 is pure overhead;");
    println!("HJ-8 gains with each staggered level until the cost of re-walking");
    println!("the chain for the deepest prefetch outweighs its hit rate (Fig. 7).");
}
