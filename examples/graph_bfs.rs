//! Graph workload walkthrough: what automatic prefetching can and cannot
//! do for a CSR breadth-first search (paper §5.1 G500, §6.1).
//!
//! The BFS kernel has four prefetchable structures (work list, vertex
//! list, edge list, visited/parent list). The automatic pass only proves
//! safety for the innermost `parent[edges[j]]` pattern; the manual
//! variant adds work-list-based prefetches of the vertex and edge lists.
//! This example prints the pass's own account of that gap, then measures
//! both against the baseline.
//!
//! Run with `cargo run --release --example graph_bfs`.

use swpf::pass::{run_on_module, PassConfig};
use swpf::sim::MachineConfig;
use swpf::workloads::g500::{Graph500, GraphSize};
use swpf::workloads::{Scale, Workload};
use swpf_ir::interp::{Interp, RtVal};

fn main() {
    let mut g = Graph500::new(Scale::Test, GraphSize::Small);
    g.scale_bits = 13; // 8192 vertices: enough to leave the caches
    g.edge_factor = 8;

    let mut auto = g.build_baseline();
    let report = run_on_module(&mut auto, &PassConfig::default());
    println!("--- what the pass did ---");
    print!("{report}");

    let machine = MachineConfig::a53();
    let sim = |m: &swpf::ir::Module| {
        swpf::sim::run_on_machine(&machine, m, "kernel", |i: &mut Interp| -> Vec<RtVal> {
            g.setup(i)
        })
    };
    let base = sim(&g.build_baseline());
    let auto_stats = sim(&auto);
    let manual_stats = sim(&g.build_manual(64));
    println!("\n--- A53 simulation ---");
    println!("baseline: {:>12} cycles", base.cycles);
    println!(
        "auto    : {:>12} cycles ({:.2}x) — inner edge→parent prefetch only",
        auto_stats.cycles,
        auto_stats.speedup_vs(&base)
    );
    println!(
        "manual  : {:>12} cycles ({:.2}x) — plus work-list → vertex/edge prefetches",
        manual_stats.cycles,
        manual_stats.speedup_vs(&base)
    );
}
