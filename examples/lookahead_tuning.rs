//! Look-ahead tuning walkthrough: sweep the pass's `c` constant on one
//! kernel and machine pair (paper §4.4 and Fig. 6).
//!
//! Demonstrates the paper's scheduling insight: `offset = c·(t−l)/t` with
//! a *generous* `c` is robust — too-late prefetches cost far more than
//! too-early ones.
//!
//! Run with `cargo run --release --example lookahead_tuning`.

use swpf::pass::PassConfig;
use swpf::sim::MachineConfig;
use swpf::workloads::is::IntegerSort;
use swpf::workloads::{Scale, Workload};
use swpf_ir::interp::{Interp, RtVal};

fn main() {
    let mut is = IntegerSort::new(Scale::Test);
    is.num_keys = 1 << 16;
    is.num_buckets = 1 << 17;
    let machine = MachineConfig::xeon_phi();
    let sim = |m: &swpf::ir::Module| {
        swpf::sim::run_on_machine(&machine, m, "kernel", |i: &mut Interp| -> Vec<RtVal> {
            is.setup(i)
        })
    };
    let base = sim(&is.build_baseline());
    println!(
        "IS on {} — pass-generated prefetches, varying c:",
        machine.name
    );
    println!("{:>6} {:>10} {:>9}", "c", "cycles", "speedup");
    for c in [2i64, 4, 8, 16, 32, 64, 128, 256, 512] {
        let mut m = is.build_baseline();
        swpf::pass::run_on_module(&mut m, &PassConfig::with_look_ahead(c));
        let s = sim(&m);
        println!("{c:>6} {:>10} {:>9.2}", s.cycles, s.speedup_vs(&base));
    }
    println!("\nThe plateau past the peak is the paper's point: set c generously.");
}
