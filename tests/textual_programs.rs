//! Integration through the textual interface: parse a program, run the
//! pass, verify, execute, and compare against the unmodified program —
//! covering corner shapes (down-counting loops, unsigned bounds,
//! alloc-derived clamps, pure calls) end to end.

use swpf::pass::{run_on_module, PassConfig};
use swpf_ir::interp::{Interp, NullObserver, RtVal};
use swpf_ir::parser::parse_module;
use swpf_ir::verifier::verify_module;
use swpf_ir::Module;

/// Execute `@kernel(a, b, n)` over permutation data; returns the result.
fn run_kernel(m: &Module, n: u64) -> i64 {
    let mut interp = Interp::new();
    let a = interp.alloc_array(n, 8).unwrap();
    let b = interp.alloc_array(n, 8).unwrap();
    for i in 0..n {
        interp.mem().write(a + i * 8, 8, i * 7 + 1).unwrap();
        interp.mem().write(b + i * 8, 8, (i * 13 + 5) % n).unwrap();
    }
    let f = m.find_function("kernel").expect("kernel");
    interp
        .run(
            m,
            f,
            &[
                RtVal::Int(a as i64),
                RtVal::Int(b as i64),
                RtVal::Int(n as i64),
            ],
            &mut NullObserver,
        )
        .expect("no faults")
        .expect("returns i64")
        .as_int()
}

fn check_program(src: &str, expect_prefetches: bool) {
    let mut m = parse_module(src).expect("parses");
    verify_module(&m).expect("verifies");
    let want = run_kernel(&m, 128);
    let report = run_on_module(&mut m, &PassConfig::default());
    verify_module(&m).expect("pass output verifies");
    assert_eq!(
        report.total_prefetches() > 0,
        expect_prefetches,
        "prefetch expectation:\n{report}"
    );
    assert_eq!(run_kernel(&m, 128), want, "results preserved");
    // Also at a trip count smaller than the look-ahead: clamp stress.
    assert_eq!(
        {
            let mut m2 = parse_module(src).unwrap();
            run_on_module(&mut m2, &PassConfig::default());
            run_kernel(&m2, 3)
        },
        {
            let m2 = parse_module(src).unwrap();
            run_kernel(&m2, 3)
        },
        "clamped execution at tiny trip counts"
    );
}

#[test]
fn upcounting_signed_loop_gets_prefetches() {
    check_program(
        r"module t

func @kernel(%0: ptr, %1: ptr, %2: i64) -> i64 {
  %3 = const 0: i64
  %4 = const 1: i64
bb0:
  br bb1
bb1:
  %5: i64 = phi [bb0: %3], [bb2: %12]
  %6: i64 = phi [bb0: %3], [bb2: %11]
  %7: i1 = icmp slt %5, %2
  br %7, bb2, bb3
bb2:
  %8: ptr = gep %1, %5 x 8
  %9: i64 = load i64, %8
  %10: ptr = gep %0, %9 x 8
  %s: i64 = load i64, %10
  %11: i64 = add %6, %s
  %12: i64 = add %5, %4
  br bb1
bb3:
  ret %6
}
",
        true,
    );
}

#[test]
fn unsigned_bound_loop_gets_prefetches() {
    check_program(
        r"module t

func @kernel(%0: ptr, %1: ptr, %2: i64) -> i64 {
  %3 = const 0: i64
  %4 = const 1: i64
bb0:
  br bb1
bb1:
  %5: i64 = phi [bb0: %3], [bb2: %12]
  %6: i64 = phi [bb0: %3], [bb2: %11]
  %7: i1 = icmp ult %5, %2
  br %7, bb2, bb3
bb2:
  %8: ptr = gep %1, %5 x 8
  %9: i64 = load i64, %8
  %10: ptr = gep %0, %9 x 8
  %s: i64 = load i64, %10
  %11: i64 = add %6, %s
  %12: i64 = add %5, %4
  br bb1
bb3:
  ret %6
}
",
        true,
    );
}

#[test]
fn downcounting_loop_is_rejected_without_alloc_info() {
    // for (i = n-1; i >= 0; i--): step -1 is not the canonical form the
    // loop-bound clamp supports, and the arrays are arguments — the pass
    // must refuse rather than risk a fault (§4.2 prototype restriction).
    check_program(
        r"module t

func @kernel(%0: ptr, %1: ptr, %2: i64) -> i64 {
  %3 = const 0: i64
  %4 = const 1: i64
bb0:
  %5: i64 = sub %2, %4
  br bb1
bb1:
  %6: i64 = phi [bb0: %5], [bb2: %13]
  %7: i64 = phi [bb0: %3], [bb2: %12]
  %8: i1 = icmp sge %6, %3
  br %8, bb2, bb3
bb2:
  %9: ptr = gep %1, %6 x 8
  %10: i64 = load i64, %9
  %11: ptr = gep %0, %10 x 8
  %s: i64 = load i64, %11
  %12: i64 = add %7, %s
  %13: i64 = sub %6, %4
  br bb1
bb3:
  ret %7
}
",
        false,
    );
}

#[test]
fn downcounting_loop_with_local_alloc_is_clamped_by_extent() {
    // Same down-counting shape, but the look-ahead array is a local
    // allocation: the alloc-extent clamp supports step −1 (bounded on
    // both sides), so prefetches are generated.
    let src = r"module t

func @kernel(%0: ptr, %1: ptr, %2: i64) -> i64 {
  %3 = const 0: i64
  %4 = const 1: i64
bb0:
  %a: ptr = alloc %2 x 8
  %5: i64 = sub %2, %4
  br bb1
bb1:
  %6: i64 = phi [bb0: %5], [bb2: %13]
  %7: i64 = phi [bb0: %3], [bb2: %12]
  %8: i1 = icmp sge %6, %3
  br %8, bb2, bb3
bb2:
  %9: ptr = gep %a, %6 x 8
  %10: i64 = load i64, %9
  %11: ptr = gep %0, %10 x 8
  %s: i64 = load i64, %11
  %12: i64 = add %7, %s
  %13: i64 = sub %6, %4
  br bb1
bb3:
  ret %7
}
";
    let mut m = parse_module(src).expect("parses");
    verify_module(&m).expect("verifies");
    let want = run_kernel(&m, 64);
    let report = run_on_module(&mut m, &PassConfig::default());
    verify_module(&m).expect("verifies after pass");
    assert!(
        report.total_prefetches() > 0,
        "alloc extent admits down-counting loops:\n{report}"
    );
    assert_eq!(run_kernel(&m, 64), want);
}

#[test]
fn pure_call_program_respects_extension_flag() {
    let src = r"module t

func @mix(%0: i64) -> i64 pure {
bb0:
  %1: i64 = mul %0, %0
  %2 = const 127: i64
  %3: i64 = and %1, %2
  ret %3
}

func @kernel(%0: ptr, %1: ptr, %2: i64) -> i64 {
  %3 = const 0: i64
  %4 = const 1: i64
bb0:
  br bb1
bb1:
  %5: i64 = phi [bb0: %3], [bb2: %12]
  %6: i64 = phi [bb0: %3], [bb2: %11]
  %7: i1 = icmp slt %5, %2
  br %7, bb2, bb3
bb2:
  %8: ptr = gep %1, %5 x 8
  %9: i64 = load i64, %8
  %h: i64 = call @mix(%9)
  %10: ptr = gep %0, %h x 8
  %s: i64 = load i64, %10
  %11: i64 = add %6, %s
  %12: i64 = add %5, %4
  br bb1
bb3:
  ret %6
}
";
    // Default config: rejected because of the call.
    let mut strict = parse_module(src).unwrap();
    let report = run_on_module(&mut strict, &PassConfig::default());
    assert_eq!(report.total_prefetches(), 0, "{report}");

    // Extension flag: admitted, semantics preserved.
    let mut relaxed = parse_module(src).unwrap();
    let want = run_kernel(&parse_module(src).unwrap(), 200);
    let report = run_on_module(
        &mut relaxed,
        &PassConfig {
            allow_pure_calls: true,
            ..PassConfig::default()
        },
    );
    verify_module(&relaxed).unwrap();
    assert!(report.total_prefetches() > 0, "{report}");
    assert_eq!(run_kernel(&relaxed, 200), want);
}
