//! The payoff of declaration-based invalidation, measured.
//!
//! Every pass declares through [`PassEffect`] whether its mutations
//! left the CFG intact; the driver then keeps dominators and loops
//! across CFG-preserving passes instead of dropping the whole cache.
//! Before that declaration existed, *any* change invalidated
//! everything, so a pipeline like `swpf,gvn,sccp,licm,cse,dce`
//! recomputed the dominator tree for GVN and the loop forest for LICM
//! on every single candidate of a tuning sweep. This harness replays
//! the tuning evaluator's shape — one primed shared cache, one fork per
//! candidate, a 25-point look-ahead sweep — twice: once with the real
//! passes, once with the same passes wrapped to strip their
//! preserved-analyses declaration (the old driver behaviour), and
//! asserts the declaration measurably cuts analyses computed.

use std::cell::RefCell;
use std::rc::Rc;
use swpf::pass::{PassConfig, PassReport, SwpfPass};
use swpf::pass_manager::{
    AnalysisManager, Dce, FunctionPass, Gvn, Licm, LocalCse, PassEffect, PassManager, Sccp,
};
use swpf::tune::PAPER_DISTANCES;
use swpf::workloads::{suite, Scale, Workload};
use swpf_ir::{FuncId, Module};

/// The pre-declaration driver behaviour: forward the wrapped pass
/// verbatim but strip its CFG-preservation claim, so the driver falls
/// back to dropping every cached analysis after any change.
struct NonPreserving<P>(P);

impl<P: FunctionPass> FunctionPass for NonPreserving<P> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn run(&mut self, m: &mut Module, fid: FuncId, am: &mut AnalysisManager) -> PassEffect {
        PassEffect {
            preserves_cfg: false,
            ..self.0.run(m, fid, am)
        }
    }
}

/// Run the full pipeline over a 25-point look-ahead sweep on `w`,
/// evaluator-style (shared primed cache, one fork per point), and
/// return total analyses computed across all forks.
fn sweep(w: &dyn Workload, preserving: bool) -> usize {
    let baseline = w.build_baseline();
    let mut shared = AnalysisManager::new();
    for fid in baseline.func_ids().collect::<Vec<_>>() {
        let _ = shared.func_analysis(baseline.function(fid), fid);
    }

    let mut computed = 0;
    for &c in &PAPER_DISTANCES {
        let mut m = baseline.clone();
        let mut am = shared.fork();
        let report = Rc::new(RefCell::new(PassReport::default()));
        let swpf = SwpfPass::new(PassConfig::with_look_ahead(c), Rc::clone(&report));
        let mut pm = PassManager::new();
        if preserving {
            pm.add_function_pass(Box::new(swpf));
            pm.add_function_pass(Box::new(Gvn::default()));
            pm.add_function_pass(Box::new(Sccp::default()));
            pm.add_function_pass(Box::new(Licm::default()));
            pm.add_function_pass(Box::new(LocalCse::default()));
            pm.add_function_pass(Box::new(Dce::default()));
        } else {
            pm.add_function_pass(Box::new(NonPreserving(swpf)));
            pm.add_function_pass(Box::new(NonPreserving(Gvn::default())));
            pm.add_function_pass(Box::new(NonPreserving(Sccp::default())));
            pm.add_function_pass(Box::new(NonPreserving(Licm::default())));
            pm.add_function_pass(Box::new(NonPreserving(LocalCse::default())));
            pm.add_function_pass(Box::new(NonPreserving(Dce::default())));
        }
        pm.run(&mut m, &mut am).expect("pipeline runs");
        swpf_ir::verifier::verify_module(&m).expect("pipeline output verifies");
        computed += am.analyses_computed();
    }
    computed
}

/// The headline claim: with the declarations in place, a 25-point sweep
/// of the full pipeline computes strictly fewer analyses than the old
/// invalidate-everything driver — on every workload.
#[test]
fn preserved_analyses_cut_recomputation_across_the_25_point_sweep() {
    for w in suite(Scale::Test) {
        let declared = sweep(w.as_ref(), true);
        let legacy = sweep(w.as_ref(), false);
        assert!(
            declared < legacy,
            "{}: declarations must cut analysis recomputation \
             ({declared} computed with declarations vs {legacy} without)",
            w.name()
        );
    }
}

/// The mechanism behind the cut: after the CFG-preserving prefetch
/// pass, GVN's dominator-tree request and LICM's loop-forest request
/// are both served from the primed fork — zero recomputation of either
/// structure for the whole pipeline.
#[test]
fn dominators_and_loops_survive_the_whole_preserving_pipeline() {
    let ws = suite(Scale::Test);
    let w = ws[0].as_ref();
    let baseline = w.build_baseline();
    let mut shared = AnalysisManager::new();
    for fid in baseline.func_ids().collect::<Vec<_>>() {
        let _ = shared.func_analysis(baseline.function(fid), fid);
    }

    let mut m = baseline.clone();
    let mut am = shared.fork();
    let report = Rc::new(RefCell::new(PassReport::default()));
    let mut pm = PassManager::new();
    pm.add_function_pass(Box::new(SwpfPass::new(
        PassConfig::default(),
        Rc::clone(&report),
    )));
    pm.add_function_pass(Box::new(Gvn::default()));
    pm.add_function_pass(Box::new(Licm::default()));
    let runs = pm.run(&mut m, &mut am).expect("pipeline runs");
    assert!(runs[0].changed, "prefetch pass fired");
    assert_eq!(
        am.analyses_computed(),
        0,
        "every dom/loops request after the preserving swpf pass must \
         hit the primed cache"
    );
    assert!(am.cache_hits() > 0, "GVN and LICM did read analyses");
}
