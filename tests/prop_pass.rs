//! Property tests for the prefetch pass: for randomly sized and shaped
//! indirect-chain kernels and random configurations, the transformed
//! program must verify, never fault, and compute the same result.
//!
//! This is the paper's §4.2 guarantee under test: "the checks described
//! in this section ensure that address generation code doesn't create
//! faults if the original code was correct".

use proptest::prelude::*;
use swpf::pass::{run_on_module, PassConfig};
use swpf_ir::interp::{Interp, NullObserver, RtVal};
use swpf_ir::prelude::*;
use swpf_ir::verifier::verify_module;

/// Build `for (i=0; i<n; i++) sum += aK[...a2[a1[i]]...]` with `depth`
/// indirections, arrays passed as arguments.
fn chain_kernel(depth: usize) -> Module {
    let mut m = Module::new("p");
    let mut params = vec![Type::Ptr; depth];
    params.push(Type::I64);
    let fid = m.declare_function("kernel", &params, Type::I64);
    let mut b = FunctionBuilder::new(m.function_mut(fid));
    let n = b.arg(depth);
    let entry = b.entry_block();
    let header = b.create_block("h");
    let body = b.create_block("b");
    let exit = b.create_block("x");
    let zero = b.const_i64(0);
    let one = b.const_i64(1);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, &[(entry, zero)]);
    let sum = b.phi(Type::I64, &[(entry, zero)]);
    let c = b.icmp(Pred::Slt, i, n);
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let mut idx = i;
    for level in 0..depth {
        let g = b.gep(b.arg(level), idx, 8);
        idx = b.load(Type::I64, g);
    }
    let sum2 = b.add(sum, idx);
    let i2 = b.add(i, one);
    b.add_phi_incoming(i, body, i2);
    b.add_phi_incoming(sum, body, sum2);
    b.br(header);
    b.switch_to(exit);
    b.ret(Some(sum));
    let _ = b;
    m
}

/// Run the chain kernel over `n` elements with permutation-ish data.
fn run_chain(m: &Module, depth: usize, n: u64, seed: u64) -> i64 {
    let mut interp = Interp::new();
    let mut args = Vec::new();
    let mut x = seed | 1;
    for _ in 0..depth {
        let a = interp.alloc_array(n, 8).unwrap();
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            interp.mem().write(a + i * 8, 8, x % n).unwrap();
        }
        args.push(RtVal::Int(a as i64));
    }
    args.push(RtVal::Int(n as i64));
    let f = m.find_function("kernel").unwrap();
    interp
        .run(m, f, &args, &mut NullObserver)
        .expect("no faults")
        .expect("returns sum")
        .as_int()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transformed_chains_never_fault_and_match(
        depth in 1usize..5,
        n in 1u64..200,
        c in 1i64..300,
        seed: u64,
        stride in any::<bool>(),
        max_depth in 1usize..6,
    ) {
        let baseline = chain_kernel(depth);
        let want = run_chain(&baseline, depth, n, seed);

        let mut m = baseline.clone();
        let config = PassConfig {
            look_ahead: c,
            stride_companion: stride,
            max_indirect_depth: max_depth,
            ..PassConfig::default()
        };
        run_on_module(&mut m, &config);
        verify_module(&m).expect("pass output verifies");
        let got = run_chain(&m, depth, n, seed);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn offsets_decrease_along_any_chain(t in 1usize..10, c in 1i64..1000) {
        let mut prev = i64::MAX;
        for l in 0..t {
            let o = swpf::pass::schedule::offset(c, t, l);
            prop_assert!(o >= 1);
            prop_assert!(o <= prev);
            prev = o;
        }
        // The first prefetch in a sequence always gets the full distance.
        prop_assert_eq!(swpf::pass::schedule::offset(c.max(1), t, 0), c.max(1));
    }

    #[test]
    fn tiny_loops_with_huge_lookahead_stay_safe(
        n in 1u64..8,
        c in 1000i64..100_000,
    ) {
        // The clamp must keep every generated intermediate load inside
        // the array even when the look-ahead dwarfs the trip count.
        let baseline = chain_kernel(2);
        let want = run_chain(&baseline, 2, n, 42);
        let mut m = baseline.clone();
        run_on_module(&mut m, &PassConfig::with_look_ahead(c));
        let got = run_chain(&m, 2, n, 42);
        prop_assert_eq!(got, want);
    }
}
