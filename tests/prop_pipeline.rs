//! Parser/printer round-trips of post-pass modules: every workload
//! kernel through every pipeline spec must re-parse, verify, and
//! re-print to identical text.
//!
//! The printer renumbers canonically, so `print ∘ parse ∘ print` is the
//! identity on any *valid* module — but pipeline output is exactly
//! where that invariant is easiest to break: code generation splices
//! detached-then-placed clones, CSE rewrites operands function-wide,
//! and DCE leaves detached arena values behind. This suite pins the
//! invariant deterministically over the full workload × pipeline-spec
//! matrix, and property-tests it over random configuration points.

use proptest::prelude::*;
use swpf::pass::{run_on_module, PassConfig, Pipeline};
use swpf::workloads::{suite, Scale};
use swpf_ir::parser::parse_module;
use swpf_ir::printer::print_module;
use swpf_ir::verifier::verify_module;

/// Every pipeline spec the suite exercises (the catalogue of composable
/// stages, in meaningful orders).
const SPECS: [&str; 10] = [
    "swpf",
    "swpf,dce",
    "swpf,cse",
    "swpf,cse,dce",
    "swpf,dce,cse",
    "swpf,gvn,dce",
    "swpf,sccp,cse",
    "swpf,licm,gvn,dce",
    "swpf,gvn,sccp,licm,cse,dce",
    "verify,swpf,verify,gvn,verify,sccp,verify,licm,verify,cse,verify,dce,verify",
];

/// Compile, then prove the text round-trips: print → parse → verify →
/// print must reproduce the first print exactly.
fn assert_round_trips(name: &str, config: &PassConfig) {
    for w in suite(Scale::Test) {
        let mut m = w.build_baseline();
        run_on_module(&mut m, config);
        verify_module(&m).unwrap_or_else(|e| panic!("{name}/{}: output: {e}", w.name()));

        let text = print_module(&m);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("{name}/{}: reparse: {e}\n{text}", w.name()));
        verify_module(&reparsed)
            .unwrap_or_else(|e| panic!("{name}/{}: reparsed module: {e}", w.name()));
        let reprinted = print_module(&reparsed);
        assert_eq!(
            text,
            reprinted,
            "{name}/{}: round-trip must be the identity",
            w.name()
        );
    }
}

/// Deterministic coverage: each workload kernel through every pipeline
/// spec at the default knob settings.
#[test]
fn every_workload_round_trips_through_every_pipeline_spec() {
    for spec in SPECS {
        assert_round_trips(spec, &PassConfig::with_pipeline(spec));
    }
}

/// Pipeline specs themselves round-trip through their textual form.
#[test]
fn pipeline_specs_round_trip_as_text() {
    for spec in SPECS {
        let p: Pipeline = spec.parse().expect("valid spec");
        assert_eq!(p.to_string().parse::<Pipeline>().unwrap(), p, "{spec}");
    }
}

// Random configuration points × random pipeline specs: the round-trip
// identity holds across the whole parameter space, not just the
// defaults.
proptest! {
    #[test]
    fn random_config_points_round_trip(
        spec_idx in 0usize..SPECS.len(),
        look_ahead in 2i64..256,
        stride in 0u8..2,
        hoist in 0u8..2,
        depth in 1usize..5,
    ) {
        let config = PassConfig {
            look_ahead,
            stride_companion: stride == 1,
            enable_hoisting: hoist == 1,
            max_indirect_depth: depth,
            ..PassConfig::with_pipeline(SPECS[spec_idx])
        };
        assert_round_trips(&format!("{}(c={look_ahead})", SPECS[spec_idx]), &config);
    }
}
