//! Cross-crate simulator invariants: accounting identities that must
//! hold for any program on any machine model, plus coarse qualitative
//! orderings the paper's analysis depends on.

use proptest::prelude::*;
use swpf::pass::{run_on_module, PassConfig};
use swpf::sim::{run_on_machine, MachineConfig, SimStats};
use swpf::workloads::{suite, Scale, Workload};
use swpf_ir::interp::{Interp, RtVal};

fn sim(machine: &MachineConfig, w: &dyn Workload, m: &swpf_ir::Module) -> SimStats {
    run_on_machine(machine, m, "kernel", |interp: &mut Interp| -> Vec<RtVal> {
        w.setup(interp)
    })
}

#[test]
fn accounting_identities_hold_everywhere() {
    for machine in MachineConfig::all_systems() {
        for w in suite(Scale::Test) {
            let mut m = w.build_baseline();
            run_on_module(&mut m, &PassConfig::default());
            let s = sim(&machine, w.as_ref(), &m);
            // Every load and store goes through the L1 exactly once.
            assert_eq!(
                s.l1_hits + s.l1_misses,
                s.insts.loads + s.insts.stores,
                "{}/{}: L1 accounting",
                machine.name,
                w.name()
            );
            // L2 sees demand L1 misses (plus prefetch probes), never fewer.
            assert!(
                s.l2_hits + s.l2_misses >= s.l1_misses,
                "{}/{}: L2 sees all L1 misses",
                machine.name,
                w.name()
            );
            // Prefetch outcomes partition the issued prefetches.
            assert!(
                s.mem.sw_prefetches_dropped + s.mem.sw_prefetches_redundant()
                    <= s.mem.sw_prefetches,
                "{}/{}: prefetch outcome accounting",
                machine.name,
                w.name()
            );
            // Executed prefetch instructions >= prefetches reaching memory
            // (invalid-address hints are dropped before the memory system).
            assert!(
                s.insts.prefetches >= s.mem.sw_prefetches,
                "{}/{}: prefetch instruction accounting",
                machine.name,
                w.name()
            );
            assert!(s.cycles > 0 && s.insts.total > 0);
            // IPC can never exceed the issue width.
            let width = f64::from(machine.width);
            assert!(
                s.ipc() <= width + 1e-9,
                "{}/{}: IPC {} exceeds width {width}",
                machine.name,
                w.name(),
                s.ipc()
            );
        }
    }
}

#[test]
fn same_work_same_instructions_across_machines() {
    // The *timing* models differ; the architectural execution must not.
    for w in suite(Scale::Test) {
        let m = w.build_baseline();
        let counts: Vec<u64> = MachineConfig::all_systems()
            .iter()
            .map(|cfg| sim(cfg, w.as_ref(), &m).insts.total)
            .collect();
        assert!(
            counts.windows(2).all(|p| p[0] == p[1]),
            "{}: instruction counts differ across machines: {counts:?}",
            w.name()
        );
    }
}

#[test]
fn in_order_cores_run_memory_bound_code_slower() {
    // Same caches and DRAM, different pipeline: the out-of-order core
    // must beat the in-order one on an indirect-heavy kernel.
    let w = &suite(Scale::Test)[0]; // IS
    let base_cfg = MachineConfig::haswell().without_hw_prefetcher();
    let ino_cfg = MachineConfig {
        core: swpf::sim::CoreKind::InOrder,
        name: "haswell-inorder",
        ..base_cfg.clone()
    };
    let m = w.build_baseline();
    let ooo = sim(&base_cfg, w.as_ref(), &m);
    let ino = sim(&ino_cfg, w.as_ref(), &m);
    assert!(
        ino.cycles > ooo.cycles,
        "in-order {} must be slower than out-of-order {}",
        ino.cycles,
        ooo.cycles
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multicore_stats_are_per_core_complete(cores in 1usize..5) {
        let w = swpf::workloads::is::IntegerSort::new(Scale::Test);
        let m = w.build_baseline();
        let f = m.find_function("kernel").unwrap();
        let stats = swpf::sim::run_multicore(
            &MachineConfig::haswell(),
            cores,
            &m,
            f,
            |_, interp| w.setup(interp),
        );
        prop_assert_eq!(stats.len(), cores);
        for s in &stats {
            prop_assert!(s.cycles > 0);
            prop_assert_eq!(s.l1_hits + s.l1_misses, s.insts.loads + s.insts.stores);
        }
        // All copies execute the same program: identical instruction counts.
        prop_assert!(stats.windows(2).all(|p| p[0].insts.total == p[1].insts.total));
    }

    #[test]
    fn adding_cores_never_speeds_up_the_slowest_copy(extra in 1usize..4) {
        let w = swpf::workloads::is::IntegerSort::new(Scale::Test);
        let m = w.build_baseline();
        let f = m.find_function("kernel").unwrap();
        let cfg = MachineConfig::haswell();
        let solo = swpf::sim::run_multicore(&cfg, 1, &m, f, |_, i| w.setup(i))[0].cycles;
        let multi = swpf::sim::run_multicore(&cfg, 1 + extra, &m, f, |_, i| w.setup(i));
        let worst = multi.iter().map(|s| s.cycles).max().unwrap();
        prop_assert!(
            worst + 1000 >= solo,
            "sharing cannot make a copy meaningfully faster: {solo} vs {worst}"
        );
    }
}
