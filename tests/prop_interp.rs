//! Property tests: the interpreter's arithmetic must agree with host
//! semantics, and memory must behave like memory.

use proptest::prelude::*;
use swpf_ir::interp::{Interp, NullObserver, RtVal};
use swpf_ir::prelude::*;

/// Build a one-instruction function `f(x, y) = x <op> y` and run it.
fn eval_binop(op: BinOp, x: i64, y: i64) -> Result<i64, swpf_ir::interp::Trap> {
    let mut m = Module::new("p");
    let fid = m.declare_function("f", &[Type::I64, Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let r = b.binary(op, b.arg(0), b.arg(1));
        b.ret(Some(r));
    }
    swpf_ir::verifier::verify_module(&m).unwrap();
    let mut interp = Interp::new();
    interp
        .run(
            &m,
            FuncId(0),
            &[RtVal::Int(x), RtVal::Int(y)],
            &mut NullObserver,
        )
        .map(|v| v.expect("returns a value").as_int())
}

fn eval_icmp(pred: Pred, x: i64, y: i64) -> bool {
    let mut m = Module::new("p");
    let fid = m.declare_function("f", &[Type::I64, Type::I64], Type::I1);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let r = b.icmp(pred, b.arg(0), b.arg(1));
        b.ret(Some(r));
    }
    let mut interp = Interp::new();
    interp
        .run(
            &m,
            FuncId(0),
            &[RtVal::Int(x), RtVal::Int(y)],
            &mut NullObserver,
        )
        .unwrap()
        .expect("value")
        .as_int()
        != 0
}

proptest! {
    #[test]
    fn add_sub_mul_match_wrapping_host_semantics(x: i64, y: i64) {
        prop_assert_eq!(eval_binop(BinOp::Add, x, y).unwrap(), x.wrapping_add(y));
        prop_assert_eq!(eval_binop(BinOp::Sub, x, y).unwrap(), x.wrapping_sub(y));
        prop_assert_eq!(eval_binop(BinOp::Mul, x, y).unwrap(), x.wrapping_mul(y));
    }

    #[test]
    fn bitwise_ops_match_host(x: i64, y: i64) {
        prop_assert_eq!(eval_binop(BinOp::And, x, y).unwrap(), x & y);
        prop_assert_eq!(eval_binop(BinOp::Or, x, y).unwrap(), x | y);
        prop_assert_eq!(eval_binop(BinOp::Xor, x, y).unwrap(), x ^ y);
    }

    #[test]
    fn shifts_mask_the_count_like_hardware(x: i64, s in 0i64..256) {
        prop_assert_eq!(eval_binop(BinOp::Shl, x, s).unwrap(), x.wrapping_shl(s as u32 & 63));
        prop_assert_eq!(
            eval_binop(BinOp::Lshr, x, s).unwrap(),
            ((x as u64).wrapping_shr(s as u32 & 63)) as i64
        );
        prop_assert_eq!(eval_binop(BinOp::Ashr, x, s).unwrap(), x.wrapping_shr(s as u32 & 63));
    }

    #[test]
    fn division_matches_or_traps(x: i64, y: i64) {
        let r = eval_binop(BinOp::Sdiv, x, y);
        if y == 0 {
            prop_assert!(r.is_err());
        } else {
            prop_assert_eq!(r.unwrap(), x.wrapping_div(y));
        }
        let r = eval_binop(BinOp::Urem, x, y);
        if y == 0 {
            prop_assert!(r.is_err());
        } else {
            prop_assert_eq!(r.unwrap(), ((x as u64) % (y as u64)) as i64);
        }
    }

    #[test]
    fn comparisons_match_host(x: i64, y: i64) {
        prop_assert_eq!(eval_icmp(Pred::Eq, x, y), x == y);
        prop_assert_eq!(eval_icmp(Pred::Slt, x, y), x < y);
        prop_assert_eq!(eval_icmp(Pred::Sge, x, y), x >= y);
        prop_assert_eq!(eval_icmp(Pred::Ult, x, y), (x as u64) < (y as u64));
        prop_assert_eq!(eval_icmp(Pred::Uge, x, y), (x as u64) >= (y as u64));
    }

    #[test]
    fn negated_predicate_is_complement(x: i64, y: i64) {
        for p in [Pred::Eq, Pred::Ne, Pred::Slt, Pred::Sle, Pred::Ult, Pred::Ule] {
            prop_assert_eq!(eval_icmp(p, x, y), !eval_icmp(p.negated(), x, y));
        }
    }

    #[test]
    fn swapped_predicate_swaps_operands(x: i64, y: i64) {
        for p in [Pred::Slt, Pred::Sle, Pred::Sgt, Pred::Sge, Pred::Ult, Pred::Ugt] {
            prop_assert_eq!(eval_icmp(p, x, y), eval_icmp(p.swapped(), y, x));
        }
    }

    #[test]
    fn memory_reads_back_written_scalars(
        values in prop::collection::vec(any::<u64>(), 1..64),
        size in prop::sample::select(vec![1u32, 2, 4, 8]),
    ) {
        let mut interp = Interp::new();
        let base = interp.alloc_array(values.len() as u64, size).unwrap();
        let mask = if size == 8 { u64::MAX } else { (1u64 << (size * 8)) - 1 };
        for (i, &v) in values.iter().enumerate() {
            interp.mem().write(base + i as u64 * u64::from(size), size, v).unwrap();
        }
        for (i, &v) in values.iter().enumerate() {
            let got = interp.mem().read(base + i as u64 * u64::from(size), size).unwrap();
            prop_assert_eq!(got, v & mask);
        }
    }

    #[test]
    fn out_of_bounds_accesses_always_trap(offset in 1u64..1_000_000) {
        let mut interp = Interp::new();
        let base = interp.alloc_array(8, 8).unwrap();
        let end = base + 64;
        prop_assert!(interp.mem().read(end + offset, 8).is_err());
        prop_assert!(interp.mem().read(base.wrapping_sub(offset + 8), 8).is_err());
    }

    #[test]
    fn select_behaves_like_branch(c: bool, x: i64, y: i64) {
        let mut m = Module::new("p");
        let fid = m.declare_function("f", &[Type::I1, Type::I64, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let r = b.select(b.arg(0), b.arg(1), b.arg(2));
            b.ret(Some(r));
        }
        let mut interp = Interp::new();
        let got = interp
            .run(
                &m,
                FuncId(0),
                &[RtVal::Int(i64::from(c)), RtVal::Int(x), RtVal::Int(y)],
                &mut NullObserver,
            )
            .unwrap()
            .unwrap()
            .as_int();
        prop_assert_eq!(got, if c { x } else { y });
    }
}
