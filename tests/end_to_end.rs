//! End-to-end integration: every benchmark kernel, through every pass
//! variant, must verify and compute bit-identical results.

use swpf::pass::{icc_like, run_on_module, PassConfig};
use swpf::workloads::{suite, Scale, Workload};
use swpf_ir::interp::{CountingObserver, Interp};
use swpf_ir::verifier::verify_module;
use swpf_ir::Module;

fn run_checksum(w: &dyn Workload, m: &Module) -> (u64, CountingObserver) {
    verify_module(m).expect("module verifies");
    let mut interp = Interp::new();
    let args = w.setup(&mut interp);
    let f = m.find_function("kernel").expect("kernel exists");
    let mut counts = CountingObserver::default();
    let ret = interp.run(m, f, &args, &mut counts).expect("runs cleanly");
    (w.checksum(&interp, &args, ret), counts)
}

#[test]
fn auto_pass_preserves_results_on_all_benchmarks() {
    for w in suite(Scale::Test) {
        let (want, base_counts) = run_checksum(w.as_ref(), &w.build_baseline());
        let mut m = w.build_baseline();
        let report = run_on_module(&mut m, &PassConfig::default());
        let (got, auto_counts) = run_checksum(w.as_ref(), &m);
        assert_eq!(got, want, "{}: auto pass changed results", w.name());
        // Everything except G500 must get at least one prefetch even at
        // test scale; G500's test graph is tiny but still qualifies.
        assert!(
            report.total_prefetches() > 0,
            "{}: no prefetches generated\n{report}",
            w.name()
        );
        assert!(
            auto_counts.prefetches > 0,
            "{}: prefetches never executed",
            w.name()
        );
        assert!(
            auto_counts.total > base_counts.total,
            "{}: prefetch code must add instructions",
            w.name()
        );
    }
}

#[test]
fn manual_variants_preserve_results_on_all_benchmarks() {
    for w in suite(Scale::Test) {
        let (want, _) = run_checksum(w.as_ref(), &w.build_baseline());
        for c in [4, 64, 1024] {
            let (got, counts) = run_checksum(w.as_ref(), &w.build_manual(c));
            assert_eq!(got, want, "{} manual c={c}", w.name());
            assert!(counts.prefetches > 0, "{} manual c={c}", w.name());
        }
    }
}

#[test]
fn icc_like_preserves_results_and_matches_paper_coverage() {
    // The restricted pass must fire on IS and CG and find nothing in the
    // hash/graph benchmarks (paper §6.1, Fig. 4d).
    for w in suite(Scale::Test) {
        let (want, _) = run_checksum(w.as_ref(), &w.build_baseline());
        let mut m = w.build_baseline();
        let report = icc_like::run_on_module(&mut m, &PassConfig::default());
        let (got, _) = run_checksum(w.as_ref(), &m);
        assert_eq!(got, want, "{}: icc-like changed results", w.name());
        let found = report.total_prefetches() > 0;
        let expect_found = matches!(w.name(), "IS" | "CG");
        assert_eq!(
            found,
            expect_found,
            "{}: icc-like coverage mismatch\n{report}",
            w.name()
        );
    }
}

#[test]
fn pass_config_sweep_never_breaks_correctness() {
    let configs = [
        PassConfig::with_look_ahead(1),
        PassConfig::with_look_ahead(7),
        PassConfig::with_look_ahead(100_000), // overshoots every array
        PassConfig {
            stride_companion: false,
            ..PassConfig::default()
        },
        PassConfig {
            max_indirect_depth: 1,
            ..PassConfig::default()
        },
        PassConfig {
            enable_hoisting: false,
            ..PassConfig::default()
        },
    ];
    for w in suite(Scale::Test) {
        let (want, _) = run_checksum(w.as_ref(), &w.build_baseline());
        for (i, cfg) in configs.iter().enumerate() {
            let mut m = w.build_baseline();
            run_on_module(&mut m, cfg);
            let (got, _) = run_checksum(w.as_ref(), &m);
            assert_eq!(got, want, "{} config #{i}", w.name());
        }
    }
}

#[test]
fn pass_output_still_verifies_after_second_application() {
    // Running the pass twice is not useful (it will decorate its own
    // address-generation loads), but it must never produce invalid IR or
    // wrong results.
    for w in suite(Scale::Test) {
        let (want, _) = run_checksum(w.as_ref(), &w.build_baseline());
        let mut m = w.build_baseline();
        run_on_module(&mut m, &PassConfig::default());
        run_on_module(&mut m, &PassConfig::default());
        let (got, _) = run_checksum(w.as_ref(), &m);
        assert_eq!(got, want, "{}: double application broke results", w.name());
    }
}

#[test]
fn workload_checksums_are_deterministic() {
    for w in suite(Scale::Test) {
        let (a, _) = run_checksum(w.as_ref(), &w.build_baseline());
        let (b, _) = run_checksum(w.as_ref(), &w.build_baseline());
        assert_eq!(a, b, "{}: setup must be deterministic", w.name());
    }
}

#[test]
fn printed_kernels_reparse_and_verify() {
    for w in suite(Scale::Test) {
        let mut m = w.build_baseline();
        run_on_module(&mut m, &PassConfig::default());
        let text = swpf_ir::printer::print_module(&m);
        let m2 = swpf_ir::parser::parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", w.name()));
        verify_module(&m2).unwrap_or_else(|e| panic!("{}: reparsed fails: {e}", w.name()));
        let text2 = swpf_ir::printer::print_module(&m2);
        assert_eq!(text, text2, "{}: print/parse not a fixpoint", w.name());
    }
}
