//! Parser robustness: arbitrary input must never panic, and valid
//! modules must survive arbitrary single-line mutations without panics
//! (errors are fine; crashes are not).

use proptest::prelude::*;
use swpf_ir::parser::parse_module;
use swpf_ir::printer::print_module;

const VALID: &str = r"module t

func @k(%0: ptr, %1: ptr, %2: i64) -> i64 {
  %3 = const 0: i64
  %4 = const 1: i64
bb0:
  br bb1
bb1:
  %5: i64 = phi [bb0: %3], [bb2: %11]
  %6: i64 = phi [bb0: %3], [bb2: %10]
  %7: i1 = icmp slt %5, %2
  br %7, bb2, bb3
bb2:
  %8: ptr = gep %1, %5 x 8
  %9: i64 = load i64, %8
  %sa: ptr = gep %0, %9 x 8
  %sv: i64 = load i64, %sa
  %10: i64 = add %6, %sv
  %11: i64 = add %5, %4
  br bb1
bb3:
  ret %6
}
";

proptest! {
    #[test]
    fn arbitrary_text_never_panics(s in "\\PC{0,400}") {
        let _ = parse_module(&s);
    }

    #[test]
    fn arbitrary_lines_never_panic(
        lines in prop::collection::vec("[%a-z0-9 =:,\\[\\]()@.+x-]{0,40}", 0..20),
    ) {
        let mut text = String::from("module t\n\nfunc @f() -> void {\nbb0:\n");
        for l in &lines {
            text.push_str(l);
            text.push('\n');
        }
        text.push_str("}\n");
        let _ = parse_module(&text);
    }

    #[test]
    fn single_line_mutations_never_panic(
        line_idx in 0usize..24,
        replacement in "[%a-z0-9 =:,\\[\\]@x+-]{0,30}",
    ) {
        let mut lines: Vec<String> = VALID.lines().map(String::from).collect();
        if line_idx < lines.len() {
            lines[line_idx] = replacement;
        }
        let _ = parse_module(&lines.join("\n"));
    }

    #[test]
    fn truncations_never_panic(cut in 0usize..700) {
        let text = &VALID[..cut.min(VALID.len())];
        // May split a UTF-8 boundary? VALID is ASCII, safe.
        let _ = parse_module(text);
    }
}

#[test]
fn valid_module_roundtrips_through_arbitrary_reprints() {
    let m = parse_module(VALID).expect("valid parses");
    let mut text = print_module(&m);
    for _ in 0..4 {
        let m2 = parse_module(&text).expect("reprint parses");
        swpf_ir::verifier::verify_module(&m2).expect("reprint verifies");
        let next = print_module(&m2);
        assert_eq!(next, text, "printing reached a fixpoint");
        text = next;
    }
}
