//! Property tests on the workload generators: data-structure invariants
//! the kernels (and the paper's analysis) silently rely on.

use proptest::prelude::*;
use swpf::workloads::hj::{hash_mult_inverse, HASH_MULT};
use swpf_ir::interp::Interp;
use swpf_workloads::{Scale, Workload};

proptest! {
    #[test]
    fn fibonacci_hash_inversion_hits_the_intended_bucket(
        bucket in 0u64..(1 << 12),
        low in 1u64..(1 << 20),
        bits in 4u32..20,
    ) {
        // key_for-style construction: a key built for `bucket` must hash
        // back to it for any table size ≥ the construction's.
        let bucket = bucket & ((1 << bits) - 1);
        let shift = 64 - u64::from(bits);
        let low = low & ((1u64 << shift) - 1);
        let key = ((bucket << shift) | low).wrapping_mul(hash_mult_inverse());
        let hashed = key.wrapping_mul(HASH_MULT) >> shift;
        prop_assert_eq!(hashed, bucket);
    }
}

#[test]
fn graph500_csr_is_well_formed() {
    use swpf::workloads::g500::{Graph500, GraphSize};
    let g = Graph500::new(Scale::Test, GraphSize::Small);
    let mut interp = Interp::new();
    let args = g.setup(&mut interp);
    let (row, edges) = (args[0].as_int() as u64, args[1].as_int() as u64);
    let nv = 1u64 << g.scale_bits;
    // Row offsets monotonically non-decreasing; every edge target valid.
    let mut prev = 0u64;
    for v in 0..=nv {
        let off = interp.mem_ref().read(row + v * 8, 8).unwrap();
        assert!(off >= prev, "row offsets must be sorted");
        prev = off;
    }
    let total = prev;
    assert!(total > 0, "graph has edges");
    for j in 0..total {
        let e = interp.mem_ref().read(edges + j * 8, 8).unwrap();
        assert!(e < nv, "edge target {e} out of range");
    }
}

#[test]
fn hash_join_buckets_have_exact_occupancy() {
    use swpf::workloads::hj::{ElemsPerBucket, HashJoin, BUCKET_BYTES};
    for (epb, expected_chain) in [(ElemsPerBucket::Two, 0u64), (ElemsPerBucket::Eight, 3)] {
        let hj = HashJoin::new(Scale::Test, epb);
        let mut interp = Interp::new();
        let args = hj.setup(&mut interp);
        let ht = args[1].as_int() as u64;
        let nbuckets = 1u64 << hj.bucket_bits;
        for b in 0..nbuckets {
            let base = ht + b * BUCKET_BYTES;
            let k0 = interp.mem_ref().read(base, 8).unwrap();
            let k1 = interp.mem_ref().read(base + 8, 8).unwrap();
            assert_ne!(k0, 0, "inline slot 0 filled");
            assert_ne!(k1, 0, "inline slot 1 filled");
            // Walk the chain and count nodes.
            let mut cur = interp.mem_ref().read(base + 16, 8).unwrap();
            let mut nodes = 0;
            while cur != 0 {
                nodes += 1;
                assert!(nodes <= 8, "chain cycle?");
                cur = interp.mem_ref().read(cur + 16, 8).unwrap();
            }
            assert_eq!(nodes, expected_chain, "{epb:?} bucket {b}");
        }
    }
}

#[test]
fn integer_sort_bucket_counts_sum_to_key_count() {
    use swpf::workloads::is::IntegerSort;
    let is = IntegerSort::new(Scale::Test);
    let m = is.build_baseline();
    let mut interp = Interp::new();
    let args = is.setup(&mut interp);
    let f = m.find_function("kernel").unwrap();
    interp
        .run(&m, f, &args, &mut swpf_ir::interp::NullObserver)
        .unwrap();
    let kb1 = args[0].as_int() as u64;
    let mut total = 0u64;
    for i in 0..is.num_buckets {
        total += interp.mem_ref().read(kb1 + i * 4, 4).unwrap();
    }
    assert_eq!(total, is.num_keys, "every key lands in exactly one bucket");
}

#[test]
fn conjugate_gradient_y_is_fully_written() {
    use swpf::workloads::cg::ConjugateGradient;
    let cg = ConjugateGradient::new(Scale::Test);
    let m = cg.build_baseline();
    let mut interp = Interp::new();
    let args = cg.setup(&mut interp);
    let f = m.find_function("kernel").unwrap();
    interp
        .run(&m, f, &args, &mut swpf_ir::interp::NullObserver)
        .unwrap();
    let y = args[4].as_int() as u64;
    let mut nonzero = 0;
    for i in 0..cg.nrows {
        let bits = interp.mem_ref().read(y + i * 8, 8).unwrap();
        if f64::from_bits(bits) != 0.0 {
            nonzero += 1;
        }
    }
    // Rows have ≥1 nnz and random values: virtually all sums non-zero.
    assert!(
        nonzero as u64 > cg.nrows * 9 / 10,
        "{nonzero}/{} rows written",
        cg.nrows
    );
}

#[test]
fn random_access_table_changes_exactly_where_updates_land() {
    use swpf::workloads::ra::RandomAccess;
    let ra = RandomAccess::new(Scale::Test);
    let m = ra.build_baseline();
    let mut interp = Interp::new();
    let args = ra.setup(&mut interp);
    let table = args[0].as_int() as u64;
    let len = 1u64 << ra.table_bits;
    let before: Vec<u64> = (0..len)
        .map(|i| interp.mem_ref().read(table + i * 8, 8).unwrap())
        .collect();
    let f = m.find_function("kernel").unwrap();
    interp
        .run(&m, f, &args, &mut swpf_ir::interp::NullObserver)
        .unwrap();
    let changed = (0..len)
        .filter(|&i| interp.mem_ref().read(table + i * 8, 8).unwrap() != before[i as usize])
        .count();
    assert!(changed > 0, "updates must land");
    assert!(
        changed as u64 <= ra.updates,
        "at most one change per update"
    );
}
