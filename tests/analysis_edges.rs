//! Edge-case coverage for the analyses feeding the pass: loops without
//! usable bounds, multi-exit loops, address-space isolation in the
//! multicore model, and stride-prefetcher interplay.

use swpf::analysis::{DomTree, FuncAnalysis, IvAnalysis, LoopForest};
use swpf::sim::{run_multicore, MachineConfig};
use swpf_ir::prelude::*;

#[test]
fn multi_exit_loop_has_no_bound() {
    // for (i = 0; i < n; i++) { if (a[i] == 0) break; } — two exits.
    let mut m = Module::new("t");
    let fid = m.declare_function("f", &[Type::Ptr, Type::I64], None);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, n) = (b.arg(0), b.arg(1));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let latch = b.create_block("l");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let g = b.gep(a, i, 8);
        let v = b.load(Type::I64, g);
        let z = b.icmp(Pred::Eq, v, zero);
        b.cond_br(z, exit, latch);
        b.switch_to(latch);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, latch, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
    }
    swpf_ir::verifier::verify_module(&m).unwrap();
    let f = m.function(fid);
    let analysis = FuncAnalysis::compute(f);
    let iv = analysis.ivs.all()[0];
    assert!(
        analysis.ivs.bound_of(iv.phi).is_none(),
        "two exits: no single termination condition (paper §4.2)"
    );
    // And therefore the pass refuses the indirect load.
    let mut m2 = m.clone();
    let report = swpf::pass::run_on_module(&mut m2, &swpf::pass::PassConfig::default());
    assert_eq!(report.total_prefetches(), 0, "{report}");
}

#[test]
fn non_unit_step_is_not_clamped_by_loop_bound() {
    // for (i = 0; i < n; i += 3) sum += a[b[i]]; — IV exists, step 3,
    // but the prototype's canonical-form restriction refuses it.
    let mut m = Module::new("t");
    let fid = m.declare_function("f", &[Type::Ptr, Type::Ptr, Type::I64], None);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, bp, n) = (b.arg(0), b.arg(1), b.arg(2));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let three = b.const_i64(3);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let gb = b.gep(bp, i, 8);
        let idx = b.load(Type::I64, gb);
        let ga = b.gep(a, idx, 8);
        let v = b.load(Type::I64, ga);
        b.store(v, ga);
        let i2 = b.add(i, three);
        b.add_phi_incoming(i, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
    }
    swpf_ir::verifier::verify_module(&m).unwrap();
    let f = m.function(fid);
    let ivs = &FuncAnalysis::compute(f).ivs;
    assert_eq!(ivs.all()[0].step, 3);
    let mut m2 = m.clone();
    let report = swpf::pass::run_on_module(&mut m2, &swpf::pass::PassConfig::default());
    assert_eq!(report.total_prefetches(), 0, "{report}");
    assert!(report.functions[0]
        .skipped
        .iter()
        .any(|s| s.reason == swpf::pass::candidates::SkipReason::NotCanonicalIv));
}

#[test]
fn triple_nested_loops_resolve_innermost() {
    let mut m = Module::new("t");
    let fid = m.declare_function("f", &[Type::I64], None);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let n = b.arg(0);
        let entry = b.entry_block();
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        // Three nested counted loops, hand-rolled.
        let mut headers = Vec::new();
        let mut latches = Vec::new();
        let mut phis = Vec::new();
        let mut prev = entry;
        for depth in 0..3 {
            let h = b.create_block(&format!("h{depth}"));
            let bd = b.create_block(&format!("b{depth}"));
            headers.push(h);
            b.br(h);
            b.switch_to(h);
            let iv = b.phi(Type::I64, &[(prev, zero)]);
            phis.push(iv);
            let c = b.icmp(Pred::Slt, iv, n);
            // exit target patched later; use placeholder blocks
            let x = b.create_block(&format!("x{depth}"));
            latches.push(x);
            b.cond_br(c, bd, x);
            b.switch_to(bd);
            prev = bd;
        }
        // innermost body: increment all three
        for (d, &iv) in phis.iter().enumerate().rev() {
            let i2 = b.add(iv, one);
            let cur = b.current_block();
            b.add_phi_incoming(iv, cur, i2);
            b.br(headers[d]);
            b.switch_to(latches[d]);
        }
        b.ret(None);
    }
    swpf_ir::verifier::verify_module(&m).unwrap();
    let f = m.function(fid);
    let dom = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dom);
    assert_eq!(forest.len(), 3);
    let depths: Vec<u32> = forest.ids().map(|l| forest.get(l).depth).collect();
    let mut sorted = depths.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![1, 2, 3]);
    let ivs = IvAnalysis::compute(f, &forest);
    assert_eq!(ivs.all().len(), 3, "one IV per loop");
}

#[test]
fn multicore_address_spaces_do_not_share_llc() {
    // Two cores run the same program with identical simulated addresses;
    // the address-space salt must keep their lines distinct in the
    // shared L3, so per-core DRAM reads cannot shrink with more cores.
    let mut m = Module::new("t");
    let fid = m.declare_function("kernel", &[Type::Ptr, Type::I64], None);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, n) = (b.arg(0), b.arg(1));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let g = b.gep(a, i, 64); // one line per iteration
        let v = b.load(Type::I64, g);
        b.store(v, g);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
    }
    swpf_ir::verifier::verify_module(&m).unwrap();
    let cfg = MachineConfig::haswell().without_hw_prefetcher();
    let n = 4096i64;
    let setup = |_: usize, interp: &mut swpf_ir::interp::Interp| {
        let a = interp.alloc_array(4096, 64).unwrap();
        vec![
            swpf_ir::interp::RtVal::Int(a as i64),
            swpf_ir::interp::RtVal::Int(n),
        ]
    };
    let solo = run_multicore(&cfg, 1, &m, m.find_function("kernel").unwrap(), setup);
    let duo = run_multicore(&cfg, 2, &m, m.find_function("kernel").unwrap(), setup);
    let solo_reads = solo[0].l2_misses;
    for s in &duo {
        assert!(
            s.l2_misses >= solo_reads,
            "a core must not get free hits from its sibling's identical \
             addresses: {} vs {}",
            s.l2_misses,
            solo_reads
        );
    }
}
