//! Differential tests for per-PC prefetch profiling (`swpf_sim::perf`).
//!
//! Profiling must be *observationally pure*: with profiling enabled,
//! every simulated statistic is bit-identical to the unprofiled run, on
//! every execution tier — the profiler only reads state on branches the
//! memory system already takes. The profile itself must also be
//! tier-independent (classification happens at the retire chokepoint,
//! which all tiers share), identical under trace replay, and a true
//! *partition*: every issued prefetch is classified exactly once, in
//! agreement with the aggregate counters the memory system keeps
//! unconditionally — under arbitrary look-ahead distances, machines,
//! and fuel budgets that cut the run off mid-loop.

use proptest::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};
use swpf::workloads::{suite, Scale};
use swpf_ir::exec::ExecImage;
use swpf_ir::interp::{Interp, Tier, Trap};
use swpf_sim::{
    replay_on_machine_perf, run_on_machine_image_tier, run_on_machine_image_tier_perf,
    run_on_machine_traced_perf, Machine, MachineConfig, PcProfile, SimStats,
};
use swpf_trace::TraceRecorder;

/// `swpf_sim::perf::set_enabled` is process-global; tests that flip it
/// serialise on this lock (and restore the disabled default on exit).
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn fmt_stats(s: &SimStats) -> String {
    format!("{s:?}")
}

/// Assert one profile is a conserved partition that agrees with the
/// memory system's unconditional counters.
fn assert_partition(p: &PcProfile, s: &SimStats, ctx: &str) {
    assert!(p.conserved(), "{ctx}: partition not conserved");
    for (pc, site) in &p.sites {
        assert!(site.conserved(), "{ctx}: site {pc:#x} not conserved");
    }
    let t = p.totals();
    assert_eq!(t.issued, s.mem.sw_prefetches, "{ctx}: issued");
    assert_eq!(t.dropped, s.mem.sw_prefetches_dropped, "{ctx}: dropped");
    assert_eq!(
        t.redundant_resident, s.mem.sw_prefetches_redundant_resident,
        "{ctx}: redundant_resident"
    );
    assert_eq!(
        t.redundant_inflight, s.mem.sw_prefetches_redundant_inflight,
        "{ctx}: redundant_inflight"
    );
}

#[test]
fn profiling_is_observationally_pure_on_every_tier() {
    let _g = lock();
    let w = &suite(Scale::Test)[0]; // IS — the paper's a[b[i]] kernel
    let module = w.build_manual(64);
    let f = module.find_function("kernel").expect("kernel exists");
    let image = Arc::new(ExecImage::build(&module));
    for machine in [MachineConfig::haswell(), MachineConfig::a53()] {
        let mut tier_profiles = Vec::new();
        for tier in [Tier::Classic, Tier::Engine, Tier::Bytecode] {
            let ctx = format!("{}/{tier:?}", machine.name);
            swpf_sim::perf::set_enabled(false);
            let plain = run_on_machine_image_tier(&machine, &image, f, tier, |i| w.setup(i));
            let off = run_on_machine_image_tier_perf(&machine, &image, f, tier, |i| w.setup(i));
            swpf_sim::perf::set_enabled(true);
            let on = run_on_machine_image_tier_perf(&machine, &image, f, tier, |i| w.setup(i));
            swpf_sim::perf::set_enabled(false);
            assert!(off.perf.is_none(), "{ctx}: disabled run carries a profile");
            let profile = on.perf.expect("enabled run carries a profile");
            // Bit-identical statistics with profiling off, on, and
            // absent entirely: the profiler never perturbs timing.
            assert_eq!(fmt_stats(&plain), fmt_stats(&off.stats), "{ctx}");
            assert_eq!(fmt_stats(&plain), fmt_stats(&on.stats), "{ctx}");
            assert!(
                on.stats.mem.sw_prefetches > 0,
                "{ctx}: kernel must issue prefetches for the comparison to bite"
            );
            assert_partition(&profile, &on.stats, &ctx);
            tier_profiles.push(format!("{profile:?}"));
        }
        // All tiers retire the same event stream through the same
        // chokepoint, so the profiles match to the last histogram
        // bucket.
        assert!(
            tier_profiles.windows(2).all(|p| p[0] == p[1]),
            "{}: profiles differ across tiers",
            machine.name
        );
    }
}

#[test]
fn replayed_profile_matches_direct_simulation() {
    let _g = lock();
    let w = &suite(Scale::Test)[0];
    let module = w.build_manual(64);
    let f = module.find_function("kernel").expect("kernel exists");
    let image = Arc::new(ExecImage::build(&module));
    let machine = MachineConfig::a53();
    swpf_sim::perf::set_enabled(true);
    let mut recorder = TraceRecorder::new(1, 42);
    let direct =
        run_on_machine_traced_perf(&machine, &image, f, |i| w.setup(i), recorder.stream(0));
    let trace = recorder.finish();
    let replayed = replay_on_machine_perf(&machine, &trace);
    swpf_sim::perf::set_enabled(false);
    assert_eq!(fmt_stats(&direct.stats), fmt_stats(&replayed.stats));
    assert_eq!(
        format!("{:?}", direct.perf.expect("direct profile")),
        format!("{:?}", replayed.perf.expect("replayed profile")),
        "replay must reproduce the profile exactly"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The outcome partition survives arbitrary look-ahead distances,
    // machines, and fuel budgets that stop the kernel mid-loop (so
    // in-flight prefetches are finalised by the end-of-run sweep).
    #[test]
    fn outcome_partition_conserved_under_random_configs(
        look_ahead in 1i64..300,
        mi in 0usize..4,
        fuel in 1_000u64..60_000,
    ) {
        let _g = lock();
        let w = &suite(Scale::Test)[0];
        let module = w.build_manual(look_ahead);
        let f = module.find_function("kernel").expect("kernel exists");
        let image = Arc::new(ExecImage::build(&module));
        let machine = MachineConfig::all_systems()[mi].clone();
        swpf_sim::perf::set_enabled(true);
        let mut interp = Interp::new();
        let args = w.setup(&mut interp);
        interp.set_fuel(fuel);
        let mut machine = Machine::new(machine);
        match machine.run_image(Arc::clone(&image), f, &mut interp, &args) {
            Ok(_) | Err(Trap::OutOfFuel) => {}
            Err(t) => panic!("unexpected trap: {t}"),
        }
        let run = machine.finish();
        swpf_sim::perf::set_enabled(false);
        let p = run.perf.expect("profiling enabled");
        prop_assert!(p.conserved(), "partition not conserved: {:?}", p.totals());
        for (pc, site) in &p.sites {
            prop_assert!(site.conserved(), "site {pc:#x} not conserved");
        }
        let t = p.totals();
        let mem = run.stats.mem;
        prop_assert_eq!(t.issued, mem.sw_prefetches);
        prop_assert_eq!(t.dropped, mem.sw_prefetches_dropped);
        prop_assert_eq!(t.redundant_resident, mem.sw_prefetches_redundant_resident);
        prop_assert_eq!(t.redundant_inflight, mem.sw_prefetches_redundant_inflight);
    }
}
