//! Differential test: the pre-decoded engine against the classic oracle.
//!
//! The `ExecImage` engine (`swpf_ir::exec`) replaced the tree-walking
//! interpreter on every simulation path, so it must be *observably
//! identical*: same architectural results (return value, memory, retired
//! count, workload checksum) and the same observer event stream — every
//! event's pc, frame id, result id, kind (with addresses), operand list,
//! and position in retire order. This suite runs each of the seven
//! workloads' baseline and manual-prefetch modules, the auto-pass output,
//! and a synthetic all-opcode torture kernel through both engines and
//! compares everything, including trap behaviour.

use swpf::workloads::{suite, Scale, Workload};
use swpf_ir::classic::ClassicInterp;
use swpf_ir::interp::{Event, EventKind, ExecObserver, Interp, RtVal, Trap, HEAP_BASE};
use swpf_ir::prelude::*;

/// An owned copy of one observer event.
#[derive(Debug, Clone, PartialEq)]
struct OwnedEvent {
    pc: u64,
    frame: u64,
    result: u32,
    kind: EventKind,
    operands: Vec<u32>,
}

#[derive(Default)]
struct Recorder {
    events: Vec<OwnedEvent>,
}

impl ExecObserver for Recorder {
    fn on_event(&mut self, ev: &Event<'_>) {
        self.events.push(OwnedEvent {
            pc: ev.pc,
            frame: ev.frame,
            result: ev.result.0,
            kind: ev.kind,
            operands: ev.operands.iter().map(|v| v.0).collect(),
        });
    }
}

/// FNV-1a over all allocated simulated memory.
fn mem_digest(mem: &swpf_ir::interp::Memory) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let len = mem.allocated();
    let mut off = 0u64;
    while off + 8 <= len {
        let v = mem.read(HEAP_BASE + off, 8).expect("in bounds");
        h = (h ^ v).wrapping_mul(0x100_0000_01b3);
        off += 8;
    }
    while off < len {
        let v = mem.read(HEAP_BASE + off, 1).expect("in bounds");
        h = (h ^ v).wrapping_mul(0x100_0000_01b3);
        off += 1;
    }
    h
}

struct Outcome {
    result: Result<Option<RtVal>, Trap>,
    retired: u64,
    mem_digest: u64,
    checksum: Option<u64>,
    events: Vec<OwnedEvent>,
}

fn run_classic(m: &Module, w: &dyn Workload) -> Outcome {
    let mut interp = ClassicInterp::new();
    let args = w.setup_classic(&mut interp);
    let mut rec = Recorder::default();
    let f = m.find_function("kernel").expect("kernel exists");
    let result = interp.run(m, f, &args, &mut rec);
    Outcome {
        retired: interp.retired(),
        mem_digest: mem_digest(interp.mem_ref()),
        checksum: None, // the exec side computes the workload checksum
        result,
        events: rec.events,
    }
}

fn run_exec(m: &Module, w: &dyn Workload) -> Outcome {
    let mut interp = Interp::new();
    let args = w.setup(&mut interp);
    let mut rec = Recorder::default();
    let f = m.find_function("kernel").expect("kernel exists");
    let result = interp.run(m, f, &args, &mut rec);
    let checksum = match &result {
        Ok(ret) => Some(w.checksum(&interp, &args, *ret)),
        Err(_) => None,
    };
    Outcome {
        retired: interp.retired(),
        mem_digest: mem_digest(interp.mem_ref()),
        checksum,
        result,
        events: rec.events,
    }
}

/// Workload setup targets the facade `Interp`; give the classic engine
/// the same deterministic initialisation through a memory transplant:
/// run setup on a scratch facade, then copy the memory across.
trait ClassicSetup {
    fn setup_classic(&self, interp: &mut ClassicInterp) -> Vec<RtVal>;
}

impl ClassicSetup for dyn Workload + '_ {
    fn setup_classic(&self, interp: &mut ClassicInterp) -> Vec<RtVal> {
        let mut scratch = Interp::new();
        let args = self.setup(&mut scratch);
        *interp.mem() = scratch.mem_ref().clone();
        args
    }
}

fn assert_identical(name: &str, classic: &Outcome, exec: &Outcome) {
    assert_eq!(classic.result, exec.result, "{name}: architectural result");
    assert_eq!(classic.retired, exec.retired, "{name}: retired count");
    assert_eq!(classic.mem_digest, exec.mem_digest, "{name}: final memory");
    assert_eq!(
        classic.events.len(),
        exec.events.len(),
        "{name}: event count"
    );
    for (i, (c, e)) in classic.events.iter().zip(&exec.events).enumerate() {
        assert_eq!(c, e, "{name}: event #{i} diverges");
    }
}

#[test]
fn all_workloads_baseline_and_manual_match_classic() {
    for w in suite(Scale::Test) {
        for (variant, m) in [
            ("baseline", w.build_baseline()),
            ("manual", w.build_manual(64)),
        ] {
            swpf_ir::verifier::verify_module(&m).expect("workload verifies");
            let name = format!("{}/{variant}", w.name());
            let classic = run_classic(&m, w.as_ref());
            let exec = run_exec(&m, w.as_ref());
            assert_identical(&name, &classic, &exec);
            assert!(
                exec.checksum.is_some(),
                "{name}: workload checksum computed"
            );
            assert!(
                exec.events
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::Load { .. } | EventKind::Store { .. })),
                "{name}: stream exercises memory"
            );
        }
    }
}

#[test]
fn auto_pass_output_matches_classic() {
    for w in suite(Scale::Test) {
        let mut m = w.build_baseline();
        swpf::pass::run_on_module(&mut m, &swpf::pass::PassConfig::default());
        swpf_ir::verifier::verify_module(&m).expect("pass output verifies");
        let name = format!("{}/auto", w.name());
        let classic = run_classic(&m, w.as_ref());
        let exec = run_exec(&m, w.as_ref());
        assert_identical(&name, &classic, &exec);
    }
}

/// A synthetic kernel touching every opcode family: float and integer
/// arithmetic, casts (trunc/sext/zext/ptr), select, alloc, gep,
/// narrow loads/stores, prefetch, calls, phis, and both branch kinds.
fn torture_module() -> Module {
    let mut m = Module::new("torture");
    let helper = m.declare_function("mix", &[Type::I64, Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(helper));
        let (x, y) = (b.arg(0), b.arg(1));
        let s = b.add(x, y);
        let d = b.binary(BinOp::Xor, s, y);
        b.ret(Some(d));
    }
    let fid = m.declare_function("kernel", &[Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let n = b.arg(0);
        let entry = b.entry_block();
        let eight = b.const_i64(8);
        let buf = b.alloc(n, 8);
        let fbuf = b.alloc(n, 8);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let odd = b.create_block("odd");
        let even = b.create_block("even");
        let latch = b.create_block("latch");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let acc = b.phi(Type::I64, &[(entry, zero)]);
        let facc = {
            let fz = b.constant(Constant::Float(0.0));
            b.phi(Type::F64, &[(entry, fz)])
        };
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        // Store i (narrow) and a float, prefetch ahead, call the helper.
        let g = b.gep(buf, i, 8);
        let i32v = b.cast(CastOp::Trunc, i, Type::I32);
        b.store(i32v, g);
        let narrow = b.load(Type::I32, g);
        let wide = b.cast(CastOp::Sext, narrow, Type::I64);
        let fg = b.gep(fbuf, i, 8);
        let fv = {
            let half = b.constant(Constant::Float(0.5));
            let fone = b.constant(Constant::Float(1.0));
            b.binary(BinOp::Fadd, half, fone)
        };
        b.store(fv, fg);
        let fl = b.load(Type::F64, fg);
        let f2 = b.binary(BinOp::Fmul, fl, fl);
        let fnext = b.binary(BinOp::Fadd, facc, f2);
        let ahead = b.add(i, eight);
        // `fbuf` is the heap's last allocation, so the look-ahead runs
        // past allocated memory near the end of the loop.
        let pg = b.gep(fbuf, ahead, 8);
        b.prefetch(pg); // often invalid near the end: must not trap
        let mixed = b.call(helper, &[wide, acc], Some(Type::I64));
        let parity = b.binary(BinOp::And, i, one);
        let is_odd = b.icmp(Pred::Ne, parity, zero);
        b.cond_br(is_odd, odd, even);
        b.switch_to(odd);
        let odd_v = b.mul(mixed, one);
        b.br(latch);
        b.switch_to(even);
        let sel = b.select(is_odd, zero, one);
        let even_v = b.add(mixed, sel);
        b.br(latch);
        b.switch_to(latch);
        let merged = b.phi(Type::I64, &[(odd, odd_v), (even, even_v)]);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, latch, i2);
        b.add_phi_incoming(acc, latch, merged);
        b.add_phi_incoming(facc, latch, fnext);
        b.br(header);
        b.switch_to(exit);
        let fbits = b.cast(CastOp::PtrToInt, buf, Type::I64);
        let small = b.cast(CastOp::Trunc, fbits, Type::I16);
        let back = b.cast(CastOp::Zext, small, Type::I64);
        let r = b.add(acc, back);
        b.ret(Some(r));
    }
    m
}

#[test]
fn torture_kernel_matches_classic() {
    let m = torture_module();
    swpf_ir::verifier::verify_module(&m).expect("torture verifies");
    let f = m.find_function("kernel").unwrap();
    let mut ci = ClassicInterp::new();
    let mut crec = Recorder::default();
    let cres = ci.run(&m, f, &[RtVal::Int(64)], &mut crec);
    let mut xi = Interp::new();
    let mut xrec = Recorder::default();
    let xres = xi.run(&m, f, &[RtVal::Int(64)], &mut xrec);
    assert_eq!(cres, xres, "torture: result");
    assert!(cres.is_ok(), "torture runs cleanly");
    assert_eq!(ci.retired(), xi.retired(), "torture: retired");
    assert_eq!(
        mem_digest(ci.mem_ref()),
        mem_digest(xi.mem_ref()),
        "torture: memory"
    );
    assert_eq!(crec.events, xrec.events, "torture: event stream");
    assert!(
        xrec.events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Prefetch { valid: false, .. })),
        "torture exercises the invalid-prefetch path"
    );
    assert!(
        xrec.events.iter().any(|e| e.kind == EventKind::Call),
        "torture exercises calls"
    );
}

#[test]
fn traps_and_fuel_match_classic() {
    // Division by zero mid-stream.
    let mut m = Module::new("t");
    let fid = m.declare_function("kernel", &[Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let x = b.arg(0);
        let one = b.const_i64(1);
        let y = b.add(x, one);
        let zero = b.const_i64(0);
        let d = b.binary(BinOp::Sdiv, y, zero);
        b.ret(Some(d));
    }
    let f = fid;
    for fuel in [None, Some(1u64), Some(2)] {
        let mut ci = ClassicInterp::new();
        let mut xi = Interp::new();
        if let Some(fu) = fuel {
            ci.set_fuel(fu);
            xi.set_fuel(fu);
        }
        let mut crec = Recorder::default();
        let mut xrec = Recorder::default();
        let cres = ci.run(&m, f, &[RtVal::Int(5)], &mut crec);
        let xres = xi.run(&m, f, &[RtVal::Int(5)], &mut xrec);
        assert_eq!(cres, xres, "trap parity at fuel {fuel:?}");
        assert!(cres.is_err());
        assert_eq!(crec.events, xrec.events, "events up to trap, fuel {fuel:?}");
        assert_eq!(ci.retired(), xi.retired(), "retired at trap, fuel {fuel:?}");
    }

    // Fuel exhaustion inside a phi burst (spin loop).
    let mut m2 = Module::new("spin");
    let sid = m2.declare_function("kernel", &[], None);
    {
        let mut b = FunctionBuilder::new(m2.function_mut(sid));
        let entry = b.entry_block();
        let lp = b.create_block("lp");
        let zero = b.const_i64(0);
        b.br(lp);
        b.switch_to(lp);
        let p = b.phi(Type::I64, &[(entry, zero)]);
        b.add_phi_incoming(p, lp, p);
        b.br(lp);
    }
    for fuel in 1..12u64 {
        let mut ci = ClassicInterp::new();
        let mut xi = Interp::new();
        ci.set_fuel(fuel);
        xi.set_fuel(fuel);
        let mut crec = Recorder::default();
        let mut xrec = Recorder::default();
        let cres = ci.run(&m2, sid, &[], &mut crec);
        let xres = xi.run(&m2, sid, &[], &mut xrec);
        assert_eq!(cres, xres, "spin fuel {fuel}");
        assert_eq!(cres, Err(Trap::OutOfFuel));
        assert_eq!(crec.events, xrec.events, "spin events at fuel {fuel}");
        assert_eq!(ci.retired(), xi.retired(), "spin retired at fuel {fuel}");
    }
}
