//! Property tests for the bytecode tier.
//!
//! Three families:
//! 1. randomly generated kernels (op mix, constants, trip counts drawn
//!    by proptest) must execute observably identically on the bytecode,
//!    engine, and classic tiers — results, retired counts, and the full
//!    retire-event stream;
//! 2. the fixed-width encoding round-trips: `decode(encode(w)) == w`
//!    for every word of every lowered workload function, and fusion
//!    rewrites only head opcode bytes;
//! 3. encodings that do not fit the 14-bit operand fields are rejected
//!    at lowering time (`LowerError`), never reaching dispatch.

use proptest::prelude::*;
use swpf_ir::bytecode::{decode_word, op, unfuse, BcImage, LowerError};
use swpf_ir::interp::{Event, ExecObserver, Interp, RtVal, Tier};
use swpf_ir::prelude::*;
use swpf_workloads::{suite, Scale};

#[derive(Default, Debug, PartialEq)]
struct Stream(Vec<(u64, u64, u32, Vec<u32>)>);

impl ExecObserver for Stream {
    fn on_event(&mut self, ev: &Event<'_>) {
        self.0.push((
            ev.pc,
            ev.frame,
            ev.result.0,
            ev.operands.iter().map(|v| v.0).collect(),
        ));
    }
}

/// The binop palette for random kernels: total ops only, so generated
/// programs never trap and every draw runs to completion on all tiers.
const PALETTE: [BinOp; 9] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Lshr,
    BinOp::Ashr,
];

/// Build a kernel from drawn parameters: a counted loop that runs a
/// random binop chain over an accumulator, stores it into a small
/// buffer, loads it back, compares/selects, and prefetches ahead.
fn random_kernel(ops: &[usize], consts: &[i64], trips: i64) -> Module {
    let mut m = Module::new("rand");
    let fid = m.declare_function("kernel", &[Type::Ptr, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new(m.function_mut(fid));
    let (buf, n) = (b.arg(0), b.arg(1));
    let entry = b.entry_block();
    let header = b.create_block("h");
    let body = b.create_block("b");
    let exit = b.create_block("x");
    let zero = b.const_i64(0);
    let one = b.const_i64(1);
    let seven = b.const_i64(7);
    let trips_v = b.const_i64(trips);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, &[(entry, zero)]);
    let acc = b.phi(Type::I64, &[(entry, one)]);
    let c = b.icmp(Pred::Slt, i, trips_v);
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let mut v = acc;
    for (k, &opi) in ops.iter().enumerate() {
        let cst = b.const_i64(consts[k % consts.len()]);
        v = b.binary(PALETTE[opi % PALETTE.len()], v, cst);
    }
    let slot = b.binary(BinOp::And, i, seven);
    let g = b.gep(buf, slot, 8);
    b.store(v, g);
    let back = b.load(Type::I64, g);
    let bigger = b.icmp(Pred::Sgt, back, acc);
    let picked = b.select(bigger, back, acc);
    let mixed = b.binary(BinOp::Xor, picked, v);
    let ahead = b.add(i, n);
    let pg = b.gep(buf, ahead, 8);
    b.prefetch(pg);
    let i2 = b.add(i, one);
    b.add_phi_incoming(i, body, i2);
    b.add_phi_incoming(acc, body, mixed);
    b.br(header);
    b.switch_to(exit);
    b.ret(Some(acc));
    m
}

fn run_tier(tier: Tier, m: &Module) -> (Result<Option<RtVal>, Trap>, u64, Stream) {
    let mut interp = Interp::with_tier(tier);
    let buf = interp.alloc_array(8, 8).expect("small alloc");
    let args = [RtVal::Int(buf as i64), RtVal::Int(8)];
    let mut rec = Stream::default();
    let f = m.find_function("kernel").unwrap();
    let result = interp.run(m, f, &args, &mut rec);
    (result, interp.retired(), rec)
}

use swpf_ir::interp::Trap;

proptest! {
    #[test]
    fn random_kernels_are_tier_invariant(
        ops in prop::collection::vec(0usize..9, 1..12),
        consts in prop::collection::vec(-1000i64..1000, 1..6),
        trips in 0i64..24,
    ) {
        let m = random_kernel(&ops, &consts, trips);
        swpf_ir::verifier::verify_module(&m).expect("generated kernel verifies");
        let (br, bret, bev) = run_tier(Tier::Bytecode, &m);
        let (er, eret, eev) = run_tier(Tier::Engine, &m);
        let (cr, cret, cev) = run_tier(Tier::Classic, &m);
        prop_assert_eq!(&br, &er, "bytecode vs engine result");
        prop_assert_eq!(&br, &cr, "bytecode vs classic result");
        prop_assert_eq!(bret, eret, "retired vs engine");
        prop_assert_eq!(bret, cret, "retired vs classic");
        prop_assert_eq!(&bev, &eev, "event stream vs engine");
        prop_assert_eq!(&bev, &cev, "event stream vs classic");
    }

    // Random fuel budgets on a random kernel: both tiers park at the
    // same event prefix with the same `OutOfFuel` outcome, even when
    // the budget lands between the halves of a fused pair.
    #[test]
    fn random_fuel_budgets_are_tier_invariant(
        ops in prop::collection::vec(0usize..9, 1..6),
        fuel in 1u64..400,
    ) {
        let m = random_kernel(&ops, &[3, -7], 16);
        let mut outcomes = Vec::new();
        for tier in [Tier::Bytecode, Tier::Engine, Tier::Classic] {
            let mut interp = Interp::with_tier(tier);
            let buf = interp.alloc_array(8, 8).expect("small alloc");
            interp.set_fuel(fuel);
            let mut rec = Stream::default();
            let f = m.find_function("kernel").unwrap();
            let result = interp.run(&m, f, &[RtVal::Int(buf as i64), RtVal::Int(8)], &mut rec);
            outcomes.push((result, interp.retired(), rec));
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1], "bytecode vs engine under fuel");
        prop_assert_eq!(&outcomes[0], &outcomes[2], "bytecode vs classic under fuel");
    }
}

/// Every word of every lowered workload image round-trips through the
/// decoder: `decode_word(w).encode() == w`. This pins the packed layout
/// — any field overlap or shift error breaks the identity.
#[test]
fn decode_encode_roundtrips_over_the_workload_corpus() {
    let mut words = 0usize;
    for w in suite(Scale::Test) {
        let m = w.build_baseline();
        let image = ExecImage::build(&m);
        let bc = BcImage::lower_unfused(&image).expect("workloads lower");
        for f in 0..bc.num_funcs() {
            for &word in bc.func(FuncId(f as u32)).words() {
                assert_eq!(
                    decode_word(word).encode(),
                    word,
                    "{}: word {word:#018x} does not round-trip",
                    w.name()
                );
                words += 1;
            }
        }
    }
    assert!(words > 100, "corpus should exercise many words");
}

/// Fusion only rewrites head opcode bytes: the fused image's words are
/// identical to the unfused image's except that some opcodes are
/// promoted, and `unfuse` recovers the original opcode exactly.
#[test]
fn fusion_is_an_opcode_only_rewrite_everywhere() {
    let mut fused_total = 0usize;
    for w in suite(Scale::Test) {
        let m = w.build_baseline();
        let image = ExecImage::build(&m);
        let plain = BcImage::lower_unfused(&image).expect("lowers");
        let fused = BcImage::lower(&image).expect("lowers");
        for f in 0..plain.num_funcs() {
            let (pf, ff) = (plain.func(FuncId(f as u32)), fused.func(FuncId(f as u32)));
            assert_eq!(pf.words().len(), ff.words().len(), "fusion never resizes");
            for (pw, fw) in pf.words().iter().zip(ff.words()) {
                assert_eq!(pw >> 8, fw >> 8, "operand fields must not change");
                assert_eq!(
                    unfuse(*fw as u8),
                    *pw as u8,
                    "unfuse must recover the original opcode"
                );
                if *fw as u8 >= op::FUSED_BASE {
                    fused_total += 1;
                }
            }
        }
    }
    assert!(fused_total > 0, "corpus should contain fused pairs");
}

/// A function whose value count exceeds the 14-bit slot space is
/// rejected with `LowerError::TooManySlots` at lowering; the facade's
/// cached `bytecode()` returns `None` (and the `Interp` silently falls
/// back to the engine tier) — nothing invalid ever reaches dispatch.
#[test]
fn oversized_functions_are_rejected_at_lowering_not_dispatch() {
    let mut m = Module::new("huge");
    let fid = m.declare_function("kernel", &[Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let mut v = b.arg(0);
        let one = b.const_i64(1);
        for _ in 0..17_000 {
            v = b.add(v, one);
        }
        b.ret(Some(v));
    }
    let image = ExecImage::build(&m);
    assert!(matches!(
        BcImage::lower(&image),
        Err(LowerError::TooManySlots { .. })
    ));
    assert!(image.bytecode().is_none(), "facade cache agrees");

    // The fallback still executes the module correctly on the bytecode
    // tier setting — via the engine.
    let mut interp = Interp::with_tier(Tier::Bytecode);
    let r = interp
        .run(
            &m,
            fid,
            &[RtVal::Int(5)],
            &mut swpf_ir::interp::NullObserver,
        )
        .unwrap();
    assert_eq!(r, Some(RtVal::Int(5 + 17_000)));
}
