//! Differential suite for the global optimizer passes (GVN, SCCP,
//! LICM).
//!
//! Each new pass rewrites real code — merging dominated duplicates,
//! folding proven constants and branches, hoisting invariant address
//! computation — but must never change what a kernel *computes*: the
//! architectural result, the final memory image, the workload checksum,
//! and trap behaviour are all invariant, on every execution tier. This
//! suite runs every pass (alone and in the full pipeline) over all 7
//! workloads × 3 kernel variants and compares the outcome against the
//! unoptimized module on all three tiers (bytecode, pre-decoded engine,
//! classic tree-walker), plus a synthetic trapping kernel proving a
//! runtime trap survives every pass. Property tests pin the per-pass
//! contracts: GVN never increases the (static or dynamic) instruction
//! count, LICM hoists only speculation-safe loop-invariant code, and
//! SCCP's folded constants agree with the interpreter.

use proptest::prelude::*;
use swpf::pass::{run_on_module, PassConfig};
use swpf::workloads::{suite, KernelVariant, Scale, Workload};
use swpf_ir::interp::{Interp, NullObserver, RtVal, Tier, Trap, HEAP_BASE};
use swpf_ir::printer::print_module;
use swpf_ir::Module;

/// The pipelines under test: each global pass alone (the sharpest
/// attribution) and the full default pipeline.
const PIPELINES: [&str; 4] = ["gvn", "sccp", "licm", "gvn,sccp,licm,cse,dce"];

const TIERS: [Tier; 3] = [Tier::Bytecode, Tier::Engine, Tier::Classic];

/// FNV-1a over all allocated simulated memory.
fn mem_digest(mem: &swpf_ir::interp::Memory) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let len = mem.allocated();
    let mut off = 0u64;
    while off + 8 <= len {
        let v = mem.read(HEAP_BASE + off, 8).expect("in bounds");
        h = (h ^ v).wrapping_mul(0x100_0000_01b3);
        off += 8;
    }
    while off < len {
        let v = mem.read(HEAP_BASE + off, 1).expect("in bounds");
        h = (h ^ v).wrapping_mul(0x100_0000_01b3);
        off += 1;
    }
    h
}

struct Outcome {
    result: Result<Option<RtVal>, Trap>,
    retired: u64,
    mem_digest: u64,
    checksum: Option<u64>,
}

fn run_tier(tier: Tier, m: &Module, w: &dyn Workload) -> Outcome {
    let mut interp = Interp::with_tier(tier);
    let args = w.setup(&mut interp);
    let f = m.find_function("kernel").expect("kernel exists");
    let result = interp.run(m, f, &args, &mut NullObserver);
    let checksum = match &result {
        Ok(ret) => Some(w.checksum(&interp, &args, *ret)),
        Err(_) => None,
    };
    Outcome {
        retired: interp.retired(),
        mem_digest: mem_digest(interp.mem_ref()),
        checksum,
        result,
    }
}

/// Optimize `m` with the given cleanup-only pipeline, with explicit
/// `verify` stages interleaved so a breakage is attributed to the pass
/// that caused it, not discovered downstream.
fn optimize(m: &mut Module, spec: &str) {
    let mut checked = String::from("verify");
    for p in spec.split(',') {
        checked.push(',');
        checked.push_str(p);
        checked.push_str(",verify");
    }
    run_on_module(m, &PassConfig::with_pipeline(&checked));
    swpf_ir::verifier::verify_module(m).expect("optimized module verifies");
}

/// The headline contract: every pass preserves architectural results,
/// memory, and checksums on every workload × variant × tier, and never
/// increases the dynamic instruction count.
#[test]
fn global_passes_preserve_semantics_on_all_workloads_variants_and_tiers() {
    for w in suite(Scale::Test) {
        let auto = {
            let mut m = w.build_baseline();
            run_on_module(&mut m, &PassConfig::default());
            m
        };
        for (variant, m0) in [
            ("baseline", w.build_baseline()),
            (
                "manual",
                w.build_variant(KernelVariant::Manual { look_ahead: 64 })
                    .expect("manual supported everywhere"),
            ),
            ("auto", auto),
        ] {
            for spec in PIPELINES {
                let mut m1 = m0.clone();
                optimize(&mut m1, spec);
                for tier in TIERS {
                    let name = format!("{}/{variant}/{spec}/{tier:?}", w.name());
                    let before = run_tier(tier, &m0, w.as_ref());
                    let after = run_tier(tier, &m1, w.as_ref());
                    assert_eq!(before.result, after.result, "{name}: result");
                    assert_eq!(before.mem_digest, after.mem_digest, "{name}: memory");
                    assert_eq!(before.checksum, after.checksum, "{name}: checksum");
                    assert!(
                        after.retired <= before.retired,
                        "{name}: optimization must not grow execution ({} vs {})",
                        after.retired,
                        before.retired
                    );
                }
            }
        }
    }
}

/// A kernel whose loop traps (division by a runtime zero) midway
/// through, after observable stores. Foldable constant arithmetic and a
/// hoistable invariant multiply surround the trap so every pass has
/// something to chew on without being allowed to change when (or
/// whether) the trap fires.
const TRAPPING_KERNEL: &str = "module traps

func @kernel(%0: ptr, %1: i64) -> i64 {
  %2 = const 0: i64
  %3 = const 1: i64
  %4 = const 3: i64
  %5 = const 21: i64
bb0:
  %6: i64 = mul %4, %5
  br bb1
bb1:
  %7: i64 = phi [bb0: %2], [bb2: %14]
  %8: i1 = icmp slt %7, %1
  br %8, bb2, bb3
bb2:
  %9: i64 = mul %1, %1
  %10: ptr = gep %0, %7 x 8
  store %9, %10
  %11: i64 = sub %1, %7
  %12: i64 = sub %11, %3
  %13: i64 = sdiv %6, %12
  %14: i64 = add %7, %3
  br bb1
bb3:
  ret %6
}
";

/// Trap preservation: the division by zero on the loop's last iteration
/// must fire at the same point — same trap, same retired count, same
/// memory — after every pass, on every tier.
#[test]
fn global_passes_preserve_trap_behavior() {
    let parse = || swpf_ir::parser::parse_module(TRAPPING_KERNEL).expect("trapping kernel parses");
    let m0 = parse();
    swpf_ir::verifier::verify_module(&m0).expect("trapping kernel verifies");
    let n = 5i64;

    let run = |m: &Module, tier: Tier| {
        let mut interp = Interp::with_tier(tier);
        let buf = interp.alloc_array(8, 8).expect("allocates");
        let args = vec![RtVal::Int(buf as i64), RtVal::Int(n)];
        let result = interp.run(
            m,
            m.find_function("kernel").unwrap(),
            &args,
            &mut NullObserver,
        );
        (result, interp.retired(), mem_digest(interp.mem_ref()))
    };

    for spec in PIPELINES {
        let mut m1 = m0.clone();
        optimize(&mut m1, spec);
        for tier in TIERS {
            let name = format!("traps/{spec}/{tier:?}");
            let (r0, _retired0, mem0) = run(&m0, tier);
            let (r1, _retired1, mem1) = run(&m1, tier);
            assert_eq!(r0, r1, "{name}: trap outcome");
            assert!(
                matches!(r1, Err(Trap::DivByZero)),
                "{name}: kernel must still trap, got {r1:?}"
            );
            assert_eq!(mem0, mem1, "{name}: stores before the trap survive");
        }
    }
}

/// Static instruction count of a module (placed instructions only).
fn inst_count(m: &Module) -> usize {
    m.func_ids()
        .map(|f| m.function(f).all_insts().count())
        .sum()
}

proptest! {
    // GVN never increases the static instruction count, on any
    // workload at any configuration point, and composes with the
    // prefetch pass (which is where cross-block duplicates come from).
    #[test]
    fn gvn_never_increases_instruction_count(
        wi in 0usize..7,
        look_ahead in 2i64..256,
        stride in 0u8..2,
    ) {
        let ws = suite(Scale::Test);
        let w = ws[wi].as_ref();
        let mut m = w.build_baseline();
        run_on_module(&mut m, &PassConfig {
            look_ahead,
            stride_companion: stride == 1,
            ..PassConfig::default()
        });
        let before = inst_count(&m);
        optimize(&mut m, "gvn");
        let after = inst_count(&m);
        prop_assert!(after <= before, "{}: {before} -> {after}", w.name());
    }

    // LICM hoists only speculation-safe, loop-invariant instructions:
    // the hoisted module verifies (SSA dominance would flag a variant
    // operand), executes identically, and retires no more instructions
    // than before on the workload's real input.
    #[test]
    fn licm_is_speculation_safe_and_invariant(
        wi in 0usize..7,
        look_ahead in 2i64..256,
    ) {
        let ws = suite(Scale::Test);
        let w = ws[wi].as_ref();
        let mut m = w.build_baseline();
        run_on_module(&mut m, &PassConfig {
            look_ahead,
            ..PassConfig::default()
        });
        let m0 = m.clone();
        optimize(&mut m, "licm");
        prop_assert_eq!(inst_count(&m), inst_count(&m0), "LICM moves, never adds/removes");
        let before = run_tier(Tier::Engine, &m0, w);
        let after = run_tier(Tier::Engine, &m, w);
        prop_assert_eq!(before.result, after.result);
        prop_assert_eq!(before.mem_digest, after.mem_digest);
    }

    // SCCP agrees with the interpreter on folded constants: folding
    // straight-line constant arithmetic produces exactly the value the
    // unfolded kernel computes, for arbitrary seeds (exercising
    // wrapping arithmetic, shifts, comparisons, and casts).
    #[test]
    fn sccp_folds_agree_with_the_interpreter(a in any::<i32>(), b in any::<i32>(), s in 0u8..64) {
        let text = format!(
            "module fold\n\nfunc @kernel(%0: i64) -> i64 {{\n  \
             %1 = const {a}: i64\n  \
             %2 = const {b}: i64\n  \
             %3 = const {s}: i64\nbb0:\n  \
             %4: i64 = add %1, %2\n  \
             %5: i64 = mul %4, %1\n  \
             %6: i64 = xor %5, %2\n  \
             %7: i64 = shl %6, %3\n  \
             %8: i64 = ashr %7, %3\n  \
             %9: i8 = trunc %8 to i8\n  \
             %10: i64 = sext %9 to i64\n  \
             %11: i1 = icmp slt %10, %1\n  \
             %12: i64 = select %11, %4, %5\n  \
             %13: i64 = add %12, %0\n  \
             ret %13\n}}\n"
        );
        let m0 = swpf_ir::parser::parse_module(&text).expect("parses");
        let mut m1 = m0.clone();
        optimize(&mut m1, "sccp");

        // Everything but the final argument-dependent add must fold.
        let fid = m1.find_function("kernel").unwrap();
        let entry = m1.function(fid).entry();
        prop_assert_eq!(
            m1.function(fid).block(entry).insts.len(),
            2,
            "folded kernel is `add` + `ret`: {}",
            print_module(&m1)
        );

        for tier in TIERS {
            let mut i0 = Interp::with_tier(tier);
            let r0 = m0.find_function("kernel").map(|f| i0.run(&m0, f, &[RtVal::Int(7)], &mut NullObserver));
            let mut i1 = Interp::with_tier(tier);
            let r1 = m1.find_function("kernel").map(|f| i1.run(&m1, f, &[RtVal::Int(7)], &mut NullObserver));
            prop_assert_eq!(r0, r1, "{:?}", tier);
        }
    }
}
