//! Differential test: the bytecode tier against both oracles.
//!
//! The bytecode engine (`swpf_ir::bytecode`) is the third execution
//! tier behind the `Interp` facade, and like the `ExecImage` engine
//! before it, it must be *observably identical* to the tree-walking
//! classic interpreter: same architectural results (return value,
//! memory, retired count, workload checksum) and the same retire-event
//! stream — every event's pc, frame id, result id, kind (with
//! addresses), operand list, and position in retire order. Fused
//! superinstructions retire two events per dispatch and must leave no
//! seam: this suite runs all seven workloads × {baseline, manual,
//! auto-pass} plus an all-opcode torture kernel through all three tiers
//! and compares everything, including trap behaviour, a fuel sweep that
//! lands budgets *inside* fused pairs, and multicore contention
//! schedules.

use std::sync::Arc;
use swpf::workloads::{suite, KernelVariant, Scale, Workload};
use swpf_ir::interp::{Event, EventKind, ExecObserver, Interp, RtVal, Tier, Trap, HEAP_BASE};
use swpf_ir::prelude::*;
use swpf_sim::{run_multicore_image_tier, run_on_machine_image_tier, MachineConfig};

/// An owned copy of one observer event.
#[derive(Debug, Clone, PartialEq)]
struct OwnedEvent {
    pc: u64,
    frame: u64,
    result: u32,
    kind: EventKind,
    operands: Vec<u32>,
}

#[derive(Default)]
struct Recorder {
    events: Vec<OwnedEvent>,
}

impl ExecObserver for Recorder {
    fn on_event(&mut self, ev: &Event<'_>) {
        self.events.push(OwnedEvent {
            pc: ev.pc,
            frame: ev.frame,
            result: ev.result.0,
            kind: ev.kind,
            operands: ev.operands.iter().map(|v| v.0).collect(),
        });
    }
}

/// FNV-1a over all allocated simulated memory.
fn mem_digest(mem: &swpf_ir::interp::Memory) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let len = mem.allocated();
    let mut off = 0u64;
    while off + 8 <= len {
        let v = mem.read(HEAP_BASE + off, 8).expect("in bounds");
        h = (h ^ v).wrapping_mul(0x100_0000_01b3);
        off += 8;
    }
    while off < len {
        let v = mem.read(HEAP_BASE + off, 1).expect("in bounds");
        h = (h ^ v).wrapping_mul(0x100_0000_01b3);
        off += 1;
    }
    h
}

#[derive(Debug)]
struct Outcome {
    result: Result<Option<RtVal>, Trap>,
    retired: u64,
    mem_digest: u64,
    checksum: Option<u64>,
    events: Vec<OwnedEvent>,
}

/// Run `kernel` on one explicit tier through the facade. The classic
/// tier shares the facade API, so no transplant shim is needed.
fn run_tier(tier: Tier, m: &Module, w: &dyn Workload) -> Outcome {
    let mut interp = Interp::with_tier(tier);
    let args = w.setup(&mut interp);
    let mut rec = Recorder::default();
    let f = m.find_function("kernel").expect("kernel exists");
    let result = interp.run(m, f, &args, &mut rec);
    let checksum = match &result {
        Ok(ret) => Some(w.checksum(&interp, &args, *ret)),
        Err(_) => None,
    };
    Outcome {
        retired: interp.retired(),
        mem_digest: mem_digest(interp.mem_ref()),
        checksum,
        result,
        events: rec.events,
    }
}

fn assert_identical(name: &str, oracle: &Outcome, bc: &Outcome) {
    assert_eq!(oracle.result, bc.result, "{name}: architectural result");
    assert_eq!(oracle.retired, bc.retired, "{name}: retired count");
    assert_eq!(oracle.mem_digest, bc.mem_digest, "{name}: final memory");
    assert_eq!(oracle.checksum, bc.checksum, "{name}: workload checksum");
    assert_eq!(oracle.events.len(), bc.events.len(), "{name}: event count");
    for (i, (o, b)) in oracle.events.iter().zip(&bc.events).enumerate() {
        assert_eq!(o, b, "{name}: event #{i} diverges");
    }
}

#[test]
fn all_workloads_all_variants_match_both_oracles() {
    for w in suite(Scale::Test) {
        let auto = {
            let mut m = w.build_baseline();
            swpf::pass::run_on_module(&mut m, &swpf::pass::PassConfig::default());
            m
        };
        for (variant, m) in [
            ("baseline", w.build_baseline()),
            (
                "manual",
                w.build_variant(KernelVariant::Manual { look_ahead: 64 })
                    .expect("manual supported everywhere"),
            ),
            ("auto", auto),
        ] {
            swpf_ir::verifier::verify_module(&m).expect("workload verifies");
            let name = format!("{}/{variant}", w.name());
            let bytecode = run_tier(Tier::Bytecode, &m, w.as_ref());
            let engine = run_tier(Tier::Engine, &m, w.as_ref());
            let classic = run_tier(Tier::Classic, &m, w.as_ref());
            assert_identical(&format!("{name} vs engine"), &engine, &bytecode);
            assert_identical(&format!("{name} vs classic"), &classic, &bytecode);
            assert!(
                bytecode.checksum.is_some(),
                "{name}: workload checksum computed"
            );
            // The comparison must be exercising the fused fast path:
            // every workload kernel contains at least one mined pair.
            let image = ExecImage::build(&m);
            let bc = image.bytecode().expect("workloads lower to bytecode");
            let fused: usize = (0..bc.num_funcs())
                .map(|f| bc.func(FuncId(f as u32)).fused_count())
                .sum();
            assert!(fused > 0, "{name}: no superinstructions fused");
        }
    }
}

/// A synthetic kernel touching every opcode family: float and integer
/// arithmetic, casts (trunc/sext/zext/ptr), select, alloc, gep,
/// narrow loads/stores, prefetch, calls, phis, and both branch kinds.
fn torture_module() -> Module {
    let mut m = Module::new("torture");
    let helper = m.declare_function("mix", &[Type::I64, Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(helper));
        let (x, y) = (b.arg(0), b.arg(1));
        let s = b.add(x, y);
        let d = b.binary(BinOp::Xor, s, y);
        b.ret(Some(d));
    }
    let fid = m.declare_function("kernel", &[Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let n = b.arg(0);
        let entry = b.entry_block();
        let eight = b.const_i64(8);
        let buf = b.alloc(n, 8);
        let fbuf = b.alloc(n, 8);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let odd = b.create_block("odd");
        let even = b.create_block("even");
        let latch = b.create_block("latch");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let acc = b.phi(Type::I64, &[(entry, zero)]);
        let facc = {
            let fz = b.constant(Constant::Float(0.0));
            b.phi(Type::F64, &[(entry, fz)])
        };
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let g = b.gep(buf, i, 8);
        let i32v = b.cast(CastOp::Trunc, i, Type::I32);
        b.store(i32v, g);
        let narrow = b.load(Type::I32, g);
        let wide = b.cast(CastOp::Sext, narrow, Type::I64);
        let fg = b.gep(fbuf, i, 8);
        let fv = {
            let half = b.constant(Constant::Float(0.5));
            let fone = b.constant(Constant::Float(1.0));
            b.binary(BinOp::Fadd, half, fone)
        };
        b.store(fv, fg);
        let fl = b.load(Type::F64, fg);
        let f2 = b.binary(BinOp::Fmul, fl, fl);
        let fnext = b.binary(BinOp::Fadd, facc, f2);
        let ahead = b.add(i, eight);
        // `fbuf` is the heap's last allocation, so the look-ahead runs
        // past allocated memory near the end of the loop: the fused
        // prefetch paths must keep the never-faults contract.
        let pg = b.gep(fbuf, ahead, 8);
        b.prefetch(pg);
        let mixed = b.call(helper, &[wide, acc], Some(Type::I64));
        let parity = b.binary(BinOp::And, i, one);
        let is_odd = b.icmp(Pred::Ne, parity, zero);
        b.cond_br(is_odd, odd, even);
        b.switch_to(odd);
        let odd_v = b.mul(mixed, one);
        b.br(latch);
        b.switch_to(even);
        let sel = b.select(is_odd, zero, one);
        let even_v = b.add(mixed, sel);
        b.br(latch);
        b.switch_to(latch);
        let merged = b.phi(Type::I64, &[(odd, odd_v), (even, even_v)]);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, latch, i2);
        b.add_phi_incoming(acc, latch, merged);
        b.add_phi_incoming(facc, latch, fnext);
        b.br(header);
        b.switch_to(exit);
        let fbits = b.cast(CastOp::PtrToInt, buf, Type::I64);
        let small = b.cast(CastOp::Trunc, fbits, Type::I16);
        let back = b.cast(CastOp::Zext, small, Type::I64);
        let r = b.add(acc, back);
        b.ret(Some(r));
    }
    m
}

fn run_plain(tier: Tier, m: &Module, args: &[RtVal], fuel: Option<u64>) -> Outcome {
    let mut interp = Interp::with_tier(tier);
    if let Some(fu) = fuel {
        interp.set_fuel(fu);
    }
    let f = m.find_function("kernel").expect("kernel exists");
    let mut rec = Recorder::default();
    let result = interp.run(m, f, args, &mut rec);
    Outcome {
        retired: interp.retired(),
        mem_digest: mem_digest(interp.mem_ref()),
        checksum: None,
        result,
        events: rec.events,
    }
}

#[test]
fn torture_kernel_matches_both_oracles() {
    let m = torture_module();
    swpf_ir::verifier::verify_module(&m).expect("torture verifies");
    let args = [RtVal::Int(64)];
    let bc = run_plain(Tier::Bytecode, &m, &args, None);
    let engine = run_plain(Tier::Engine, &m, &args, None);
    let classic = run_plain(Tier::Classic, &m, &args, None);
    assert!(bc.result.is_ok(), "torture runs cleanly");
    assert_identical("torture vs engine", &engine, &bc);
    assert_identical("torture vs classic", &classic, &bc);
    assert!(
        bc.events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Prefetch { valid: false, .. })),
        "torture exercises the invalid-prefetch path"
    );
    assert!(
        bc.events.iter().any(|e| e.kind == EventKind::Call),
        "torture exercises calls"
    );
}

/// Division trap mid-stream: identical error, events, retired count.
#[test]
fn traps_match_both_oracles() {
    let mut m = Module::new("t");
    let fid = m.declare_function("kernel", &[Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let x = b.arg(0);
        let one = b.const_i64(1);
        let y = b.add(x, one);
        let zero = b.const_i64(0);
        let d = b.binary(BinOp::Sdiv, y, zero);
        b.ret(Some(d));
    }
    let _ = fid;
    let args = [RtVal::Int(5)];
    for fuel in [None, Some(1u64), Some(2)] {
        let bc = run_plain(Tier::Bytecode, &m, &args, fuel);
        let engine = run_plain(Tier::Engine, &m, &args, fuel);
        let classic = run_plain(Tier::Classic, &m, &args, fuel);
        assert!(bc.result.is_err(), "kernel must trap");
        assert_identical(&format!("trap vs engine, fuel {fuel:?}"), &engine, &bc);
        assert_identical(&format!("trap vs classic, fuel {fuel:?}"), &classic, &bc);
    }
}

/// Exhaustive fuel sweep over a loop whose body is dense with fused
/// pairs: every budget value lands at a different point of the kernel,
/// including *between the two halves of a fused superinstruction* — the
/// bytecode tier must park the cursor mid-pair and report `OutOfFuel`
/// with exactly the oracle's event prefix.
#[test]
fn fuel_sweep_lands_inside_fused_pairs() {
    let mut m = Module::new("sum");
    let fid = m.declare_function("kernel", &[Type::Ptr, Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, n) = (b.arg(0), b.arg(1));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let acc = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let addr = b.gep(a, i, 8); // gep;ld_i64 fuses
        let v = b.load(Type::I64, addr);
        let acc2 = b.add(acc, v);
        let one = b.const_i64(1);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(acc));
    }
    // The kernel must actually contain fused pairs for the sweep to
    // cross them.
    let image = ExecImage::build(&m);
    let bcimg = image.bytecode().expect("lowers");
    assert!(
        bcimg.func(FuncId(0)).fused_count() > 0,
        "sum loop should fuse gep;ld pairs"
    );

    let elems = 6u64;
    let setup = |interp: &mut Interp| -> Vec<RtVal> {
        let base = interp.alloc_array(elems, 8).unwrap();
        for k in 0..elems {
            interp.mem().write(base + k * 8, 8, 3 * k + 1).unwrap();
        }
        vec![RtVal::Int(base as i64), RtVal::Int(elems as i64)]
    };
    // Unfuelled retired count bounds the sweep.
    let full = {
        let mut interp = Interp::with_tier(Tier::Engine);
        let args = setup(&mut interp);
        let f = m.find_function("kernel").unwrap();
        interp
            .run(&m, f, &args, &mut swpf_ir::interp::NullObserver)
            .unwrap();
        interp.retired()
    };
    for fuel in 1..=full {
        let mut outcomes = Vec::new();
        for tier in [Tier::Bytecode, Tier::Engine, Tier::Classic] {
            let mut interp = Interp::with_tier(tier);
            let args = setup(&mut interp);
            interp.set_fuel(fuel);
            let f = m.find_function("kernel").unwrap();
            let mut rec = Recorder::default();
            let result = interp.run(&m, f, &args, &mut rec);
            outcomes.push(Outcome {
                retired: interp.retired(),
                mem_digest: mem_digest(interp.mem_ref()),
                checksum: None,
                result,
                events: rec.events,
            });
        }
        let (bc, engine, classic) = (&outcomes[0], &outcomes[1], &outcomes[2]);
        if fuel < full {
            assert_eq!(bc.result, Err(Trap::OutOfFuel), "fuel {fuel} must exhaust");
        }
        assert_identical(&format!("fuel {fuel} vs engine"), engine, bc);
        assert_identical(&format!("fuel {fuel} vs classic"), classic, bc);
    }
}

/// Single-core timing statistics are tier-invariant: the timing model
/// consumes only the event stream, and the streams are bit-identical.
#[test]
fn sim_stats_identical_across_tiers() {
    let cfg = MachineConfig::haswell();
    for w in suite(Scale::Test).into_iter().take(2) {
        let m = w.build_manual(16);
        let f = m.find_function("kernel").unwrap();
        let image = Arc::new(ExecImage::build(&m));
        let stats: Vec<String> = [Tier::Bytecode, Tier::Engine]
            .iter()
            .map(|&tier| {
                format!(
                    "{:?}",
                    run_on_machine_image_tier(&cfg, &image, f, tier, |i| w.setup(i))
                )
            })
            .collect();
        assert_eq!(stats[0], stats[1], "{}: single-core SimStats", w.name());
    }
}

/// Multicore contention schedules are tier-invariant: the interleaver
/// picks cores by local clock, the clocks advance by event stream, and
/// the streams are identical — so per-core stats (including shared LLC
/// and DRAM contention) must match bit-for-bit.
#[test]
fn multicore_contention_schedule_identical_across_tiers() {
    let cfg = MachineConfig::haswell();
    let w = &suite(Scale::Test)[0]; // IS
    let m = w.build_manual(16);
    let f = m.find_function("kernel").unwrap();
    let image = Arc::new(ExecImage::build(&m));
    for n_cores in [2usize, 4] {
        let per_tier: Vec<String> = [Tier::Bytecode, Tier::Engine]
            .iter()
            .map(|&tier| {
                let stats =
                    run_multicore_image_tier(&cfg, n_cores, &image, f, tier, |_, i| w.setup(i));
                format!("{stats:?}")
            })
            .collect();
        assert_eq!(
            per_tier[0], per_tier[1],
            "{n_cores}-core contention schedule diverges between tiers"
        );
    }
}
