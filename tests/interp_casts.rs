//! Cast and narrow-type semantics through the full IR + interpreter
//! stack: sign/zero extension, truncation, and pointer round-trips.

use swpf_ir::interp::{Interp, NullObserver, RtVal};
use swpf_ir::prelude::*;

fn run1(m: &Module, arg: i64) -> i64 {
    swpf_ir::verifier::verify_module(m).expect("verifies");
    let mut interp = Interp::new();
    interp
        .run(m, FuncId(0), &[RtVal::Int(arg)], &mut NullObserver)
        .unwrap()
        .expect("returns")
        .as_int()
}

#[test]
fn trunc_then_zext_masks_high_bits() {
    let mut m = Module::new("t");
    let fid = m.declare_function("f", &[Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let narrow = b.cast(CastOp::Trunc, b.arg(0), Type::I8);
        let wide = b.cast(CastOp::Zext, narrow, Type::I64);
        b.ret(Some(wide));
    }
    assert_eq!(run1(&m, 0x1234), 0x34);
    assert_eq!(run1(&m, -1), 0xFF);
    assert_eq!(run1(&m, 0x80), 0x80);
}

#[test]
fn trunc_then_sext_sign_extends() {
    let mut m = Module::new("t");
    let fid = m.declare_function("f", &[Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let narrow = b.cast(CastOp::Trunc, b.arg(0), Type::I16);
        let wide = b.cast(CastOp::Sext, narrow, Type::I64);
        b.ret(Some(wide));
    }
    assert_eq!(run1(&m, 0x7FFF), 0x7FFF);
    assert_eq!(run1(&m, 0x8000), -0x8000);
    assert_eq!(run1(&m, -1), -1);
}

#[test]
fn ptr_int_roundtrip_preserves_address() {
    let mut m = Module::new("t");
    let fid = m.declare_function("f", &[Type::Ptr], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let as_int = b.cast(CastOp::PtrToInt, b.arg(0), Type::I64);
        let one = b.const_i64(8);
        let moved = b.add(as_int, one);
        let back = b.cast(CastOp::IntToPtr, moved, Type::Ptr);
        let v = b.load(Type::I64, back);
        b.ret(Some(v));
    }
    swpf_ir::verifier::verify_module(&m).unwrap();
    let mut interp = Interp::new();
    let a = interp.alloc_array(2, 8).unwrap();
    interp.mem().write(a + 8, 8, 0xDEAD).unwrap();
    let r = interp
        .run(&m, FuncId(0), &[RtVal::Int(a as i64)], &mut NullObserver)
        .unwrap()
        .unwrap()
        .as_int();
    assert_eq!(r, 0xDEAD);
}

#[test]
fn narrow_stores_do_not_clobber_neighbours() {
    let mut m = Module::new("t");
    let fid = m.declare_function("f", &[Type::Ptr], None);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let p = b.arg(0);
        let v = b.constant(Constant::Int(0xAB, Type::I8));
        let one = b.const_i64(1);
        let q = b.gep(p, one, 1); // byte 1
        b.store(v, q);
        b.ret(None);
    }
    swpf_ir::verifier::verify_module(&m).unwrap();
    let mut interp = Interp::new();
    let a = interp.alloc_array(1, 8).unwrap();
    interp.mem().write(a, 8, 0x1111_1111_1111_1111).unwrap();
    interp
        .run(&m, FuncId(0), &[RtVal::Int(a as i64)], &mut NullObserver)
        .unwrap();
    assert_eq!(
        interp.mem().read(a, 8).unwrap(),
        0x1111_1111_1111_AB11,
        "only byte 1 changes"
    );
}

#[test]
fn verifier_rejects_invalid_casts() {
    // Widening "trunc" must be rejected.
    let mut m = Module::new("t");
    let fid = m.declare_function("f", &[Type::I8], Type::I64);
    {
        let f = m.function_mut(fid);
        let entry = f.entry();
        let bad = f.create_inst(
            swpf_ir::InstKind::Cast {
                op: CastOp::Trunc,
                val: f.arg(0),
                to: Type::I64,
            },
            Some(Type::I64),
            entry,
        );
        f.push_inst(bad);
        let ret = f.create_inst(swpf_ir::InstKind::Ret { value: Some(bad) }, None, entry);
        f.push_inst(ret);
    }
    let err = swpf_ir::verifier::verify_module(&m).unwrap_err();
    assert!(err.message.contains("invalid cast"), "{err}");
}
