//! Differential test: the pass-manager pipeline against the legacy
//! monolithic driver.
//!
//! PR 5 re-layered `swpf-core` onto the `swpf-pass` manager: analyses
//! now come from a shared invalidation-aware cache, and the pass runs
//! as staged `discover → filter → schedule+codegen` under a driver.
//! None of that may change what the compiler *produces*: for the
//! default (bare `"swpf"`) pipeline, the pipelined path must be
//! **bit-identical** to the legacy monolithic shape — same printed
//! module text, same retire-event stream, same report — on every
//! workload and for off-default knob settings. The legacy entry point
//! survives as `run_on_module_monolithic`, the oracle this suite
//! compares against.
//!
//! The cleanup pipelines (`"swpf,cse,dce"`) are *meant* to change the
//! module; for those the suite asserts semantic preservation instead:
//! identical architectural results and memory, prefetches kept, and
//! strictly fewer retired instructions than the bare pipeline.

use swpf::pass::{run_on_module, run_on_module_monolithic, PassConfig};
use swpf::workloads::{suite, Scale, Workload};
use swpf_ir::interp::{Event, EventKind, ExecObserver, Interp, RtVal, Trap, HEAP_BASE};
use swpf_ir::printer::print_module;
use swpf_ir::Module;

/// An owned copy of one observer event.
#[derive(Debug, Clone, PartialEq)]
struct OwnedEvent {
    pc: u64,
    frame: u64,
    result: u32,
    kind: EventKind,
    operands: Vec<u32>,
}

#[derive(Default)]
struct Recorder {
    events: Vec<OwnedEvent>,
}

impl ExecObserver for Recorder {
    fn on_event(&mut self, ev: &Event<'_>) {
        self.events.push(OwnedEvent {
            pc: ev.pc,
            frame: ev.frame,
            result: ev.result.0,
            kind: ev.kind,
            operands: ev.operands.iter().map(|v| v.0).collect(),
        });
    }
}

/// FNV-1a over all allocated simulated memory.
fn mem_digest(mem: &swpf_ir::interp::Memory) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let len = mem.allocated();
    let mut off = 0u64;
    while off + 8 <= len {
        let v = mem.read(HEAP_BASE + off, 8).expect("in bounds");
        h = (h ^ v).wrapping_mul(0x100_0000_01b3);
        off += 8;
    }
    while off < len {
        let v = mem.read(HEAP_BASE + off, 1).expect("in bounds");
        h = (h ^ v).wrapping_mul(0x100_0000_01b3);
        off += 1;
    }
    h
}

struct Outcome {
    result: Result<Option<RtVal>, Trap>,
    retired: u64,
    mem_digest: u64,
    events: Vec<OwnedEvent>,
}

fn execute(m: &Module, w: &dyn Workload) -> Outcome {
    let mut interp = Interp::new();
    let args = w.setup(&mut interp);
    let mut rec = Recorder::default();
    let f = m.find_function("kernel").expect("kernel exists");
    let result = interp.run(m, f, &args, &mut rec);
    Outcome {
        retired: interp.retired(),
        mem_digest: mem_digest(interp.mem_ref()),
        result,
        events: rec.events,
    }
}

/// The knob settings the differential covers, beyond the default.
fn configs() -> Vec<(&'static str, PassConfig)> {
    vec![
        ("default", PassConfig::default()),
        ("c16", PassConfig::with_look_ahead(16)),
        (
            "nostride",
            PassConfig {
                stride_companion: false,
                ..PassConfig::default()
            },
        ),
        (
            "d1_nohoist",
            PassConfig {
                max_indirect_depth: 1,
                enable_hoisting: false,
                ..PassConfig::default()
            },
        ),
    ]
}

/// The headline contract: for the bare pipeline, pipelined ≡ monolith —
/// identical module text, identical retire-event stream, identical
/// report — on all 7 workloads × 4 configurations.
#[test]
fn pipelined_pass_is_bit_identical_to_the_monolith() {
    for w in suite(Scale::Test) {
        for (label, config) in configs() {
            let name = format!("{}/{label}", w.name());

            let mut legacy = w.build_baseline();
            let legacy_report = run_on_module_monolithic(&mut legacy, &config);
            let mut piped = w.build_baseline();
            let piped_report = run_on_module(&mut piped, &config);

            assert_eq!(
                print_module(&legacy),
                print_module(&piped),
                "{name}: module text diverges"
            );
            assert_eq!(
                legacy_report.total_prefetches(),
                piped_report.total_prefetches(),
                "{name}: prefetch count"
            );
            assert_eq!(
                legacy_report.total_skipped(),
                piped_report.total_skipped(),
                "{name}: skip count"
            );
            assert_eq!(piped_report.eliminated_insts, 0, "{name}: bare pipeline");

            let a = execute(&legacy, w.as_ref());
            let b = execute(&piped, w.as_ref());
            assert_eq!(a.result, b.result, "{name}: architectural result");
            assert_eq!(a.retired, b.retired, "{name}: retired count");
            assert_eq!(a.mem_digest, b.mem_digest, "{name}: final memory");
            assert_eq!(a.events.len(), b.events.len(), "{name}: event count");
            for (i, (ea, eb)) in a.events.iter().zip(&b.events).enumerate() {
                assert_eq!(ea, eb, "{name}: event #{i} diverges");
            }
        }
    }
}

/// The cleanup pipelines change the module (that is their job) but must
/// not change what it computes: identical results and memory vs. the
/// bare pipeline, identical prefetch counts, and strictly fewer retired
/// instructions (the eliminated address code was executing every
/// iteration).
#[test]
fn cleanup_pipelines_preserve_semantics_and_shrink_execution() {
    for w in suite(Scale::Test) {
        let mut bare = w.build_baseline();
        let bare_report = run_on_module(&mut bare, &PassConfig::default());
        let bare_out = execute(&bare, w.as_ref());

        let mut full = w.build_baseline();
        let full_report = run_on_module(&mut full, &PassConfig::with_pipeline("swpf,cse,dce"));
        swpf_ir::verifier::verify_module(&full).expect("cleaned module verifies");
        let full_out = execute(&full, w.as_ref());

        let name = w.name();
        assert!(full_report.eliminated_insts > 0, "{name}: cleanup fired");
        assert_eq!(
            bare_report.total_prefetches(),
            full_report.total_prefetches(),
            "{name}: cleanup never drops prefetches"
        );
        assert_eq!(bare_out.result, full_out.result, "{name}: results");
        assert_eq!(bare_out.mem_digest, full_out.mem_digest, "{name}: memory");
        assert!(
            full_out.retired < bare_out.retired,
            "{name}: cleanup must shrink execution ({} vs {})",
            full_out.retired,
            bare_out.retired
        );
        let full_prefetches = full_out
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Prefetch { .. }))
            .count();
        let bare_prefetches = bare_out
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Prefetch { .. }))
            .count();
        assert_eq!(
            bare_prefetches, full_prefetches,
            "{name}: dynamic prefetch stream preserved"
        );
    }
}

/// The verify-between-passes debug mode accepts every healthy pipeline:
/// explicit `verify` stages interleaved anywhere must be no-ops.
#[test]
fn explicit_verify_stages_are_transparent() {
    for w in suite(Scale::Test) {
        let mut plain = w.build_baseline();
        run_on_module(&mut plain, &PassConfig::with_pipeline("swpf,cse,dce"));
        let mut checked = w.build_baseline();
        run_on_module(
            &mut checked,
            &PassConfig::with_pipeline("verify,swpf,verify,cse,verify,dce,verify"),
        );
        assert_eq!(
            print_module(&plain),
            print_module(&checked),
            "{}: verify stages must not affect the output",
            w.name()
        );
    }
}
