//! Facade crate: re-exports the full swpf API surface.
pub use swpf_analysis as analysis;
pub use swpf_core as pass;
pub use swpf_ir as ir;
pub use swpf_pass as pass_manager;
pub use swpf_sim as sim;
pub use swpf_trace as trace;
pub use swpf_tune as tune;
pub use swpf_workloads as workloads;
