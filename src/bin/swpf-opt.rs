//! `swpf-opt` — command-line driver for the prefetch-generation pass.
//!
//! Reads a module in the textual IR format (see `swpf_ir::printer`), runs
//! the automatic software-prefetching pass, and prints the transformed
//! module. The pass report goes to stderr.
//!
//! ```text
//! swpf-opt [options] [input.swir]        (stdin when no file given)
//!   -c <n>         look-ahead constant (default 64)
//!   --no-stride    disable the stride companion prefetch
//!   --max-depth <n> cap the indirect stagger depth
//!   --passes <spec> comma-separated pass pipeline, e.g.
//!                  swpf,gvn,sccp,licm,cse,dce (default swpf; see --list)
//!   --list         list the available passes and exit
//!   --icc-like     run the restricted stride-indirect baseline instead
//!   --report-only  print only the report, not the module
//! ```

use std::io::Read as _;
use swpf::pass::{icc_like, run_on_module, PassConfig, PassName, PASS_NAMES};

/// One-line description of each pipeline pass for `--list`.
fn pass_blurb(p: PassName) -> &'static str {
    match p {
        PassName::Swpf => "software-prefetch generation for indirect accesses (Algorithm 1)",
        PassName::Gvn => "dominator-scoped global value numbering",
        PassName::Sccp => "sparse conditional constant propagation (trap-preserving)",
        PassName::Licm => "loop-invariant code motion (fault-avoiding hoists only)",
        PassName::Cse => "block-local common-subexpression elimination",
        PassName::Dce => "dead-code elimination",
        PassName::Verify => "verification checkpoint (asserts invariants, changes nothing)",
    }
}

fn main() {
    let mut config = PassConfig::default();
    let mut input: Option<String> = None;
    let mut use_icc = false;
    let mut report_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-c" => {
                let v = args.next().and_then(|s| s.parse().ok());
                config.look_ahead = v.unwrap_or_else(|| die("`-c` needs an integer"));
            }
            "--no-stride" => config.stride_companion = false,
            "--max-depth" => {
                let v = args.next().and_then(|s| s.parse().ok());
                config.max_indirect_depth =
                    v.unwrap_or_else(|| die("`--max-depth` needs an integer"));
            }
            "--allow-pure-calls" => config.allow_pure_calls = true,
            "--no-hoisting" => config.enable_hoisting = false,
            "--passes" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| die("`--passes` needs a spec"));
                config.pipeline = spec
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad pipeline spec: {e}")));
            }
            "--icc-like" => use_icc = true,
            "--report-only" => report_only = true,
            "--list" => {
                println!("passes (combine with --passes as a comma-separated spec,");
                println!("e.g. --passes swpf,gvn,sccp,licm,cse,dce):");
                for p in PASS_NAMES {
                    println!("  {:<7} {}", p.as_str(), pass_blurb(p));
                }
                return;
            }
            "-h" | "--help" => {
                eprintln!("usage: swpf-opt [-c N] [--no-stride] [--max-depth N] [--allow-pure-calls] [--no-hoisting] [--passes SPEC] [--list] [--icc-like] [--report-only] [input.swir]");
                eprintln!(
                    "  --passes SPEC   comma-separated pipeline over {}",
                    PassName::valid_tokens()
                );
                eprintln!("  --list          list the available passes and exit");
                return;
            }
            other if input.is_none() && !other.starts_with('-') => input = Some(other.to_string()),
            other => die(&format!("unknown option `{other}`")),
        }
    }

    let text = match &input {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read `{path}`: {e}"))),
        None => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
            s
        }
    };

    let mut module =
        swpf::ir::parser::parse_module(&text).unwrap_or_else(|e| die(&format!("parse error: {e}")));
    swpf::ir::verifier::verify_module(&module)
        .unwrap_or_else(|e| die(&format!("input does not verify: {e}")));

    let report = if use_icc {
        icc_like::run_on_module(&mut module, &config)
    } else {
        run_on_module(&mut module, &config)
    };
    swpf::ir::verifier::verify_module(&module)
        .unwrap_or_else(|e| die(&format!("internal error: output does not verify: {e}")));

    eprint!("{report}");
    eprintln!(
        "{} prefetch instruction(s) inserted, {} load(s) skipped",
        report.total_prefetches(),
        report.total_skipped()
    );
    if !report_only {
        print!("{}", swpf::ir::printer::print_module(&module));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("swpf-opt: {msg}");
    std::process::exit(1);
}
